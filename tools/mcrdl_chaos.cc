// mcrdl_chaos — chaos-test the runtime's fault tolerance and print a
// resilience report.
//
// Runs the same allreduce workload twice on identical simulated clusters:
// once fault-free (the baseline) and once under an injected fault plan with
// retry/failover enabled. The tool then differentially compares every
// rank's final data against the baseline — failover is only worth anything
// if it produces *zero wrong results* — and prints what the fault layer
// did: injections, retries, breaker trips, reroutes, and the virtual-time
// cost of surviving.
//
// Scenarios with a permanent rank loss (`rank_loss`, or a plan file with
// rank_loss specs) flip the differential to elastic mode: the dead rank
// cannot match the baseline, so the check becomes "the planned ranks died,
// every survivor finished, and all survivors agree with each other".
//
// Scenario `rejoin` goes one step further: the lost rank is re-admitted at
// --rejoin-at (the elastic grow path), the workload runs a second phase over
// the restored full world, and the differential check asserts the world grew
// back to its original size with every rank agreeing on the final data.
//
//   ./tools/mcrdl_chaos --scenario=outage --at=2000            # kill nccl mid-run
//   ./tools/mcrdl_chaos --scenario=transient --p=0.3
//   ./tools/mcrdl_chaos --scenario=degrade --factor=8
//   ./tools/mcrdl_chaos --scenario=rank_loss --rank=3 --at=2500 --watchdog=100000
//   ./tools/mcrdl_chaos --scenario=rejoin --rank=3 --at=2500
//   ./tools/mcrdl_chaos --plan=my_chaos.txt --trace=chaos.json
//
// --checkpoint-out saves the post-run runtime checkpoint; --checkpoint-in
// restores one right after init (pair them with --iterations=0 for the CI
// save→restore→save byte-identity smoke).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/format.h"
#include "src/core/mcr_dl.h"
#include "src/sim/execution_model.h"

using namespace mcrdl;

namespace {

struct RunResult {
  std::vector<double> finals;  // per-rank final tensor value (0 if it died)
  std::vector<bool> died;      // rank exited before finishing the loop
  SimTime end_time_us = 0.0;
  SimTime comm_time_us = 0.0;  // rank 0's communication time
};

// The workload: `iters` spaced allreduces on the preferred backend. Every
// iteration multiplies the data by the world size, so any dropped or
// double-applied collective shows up in the differential check. A rank whose
// permanent loss instant has passed exits at the loop top; one whose
// collective surfaces RankLostError (the casualty itself — survivors get the
// op replayed transparently) exits through the catch.
RunResult run_workload(ClusterContext& cluster, McrDl& mcr, const std::string& backend,
                       int iters, std::size_t elems, SimTime interval_us) {
  RunResult out;
  out.finals.assign(cluster.world_size(), 0.0);
  out.died.assign(cluster.world_size(), false);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({static_cast<long long>(elems)}, DType::F32, 1.0,
                            cluster.device(rank));
    for (int i = 0; i < iters; ++i) {
      if (cluster.faults().rank_lost(rank)) {
        out.died[rank] = true;
        return;
      }
      try {
        api.all_reduce(backend, t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        out.died[rank] = true;
        return;
      }
      if (interval_us > 0.0) cluster.scheduler().sleep_for(interval_us);
    }
    api.synchronize();
    out.finals[rank] = t.get(0);
  });
  out.end_time_us = cluster.scheduler().now();
  out.comm_time_us = mcr.logger().comm_time(0);
  return out;
}

fault::FaultPlan build_plan(const Flags& flags, const std::string& primary) {
  if (!flags.get("plan").empty()) return fault::FaultPlan::load(flags.get("plan"));
  fault::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const SimTime watchdog = flags.get_double("watchdog");
  if (watchdog > 0.0) plan.watchdog_deadline_us = watchdog;
  const std::string scenario = flags.get("scenario");
  if (scenario == "outage") {
    plan.specs.push_back(fault::FaultSpec::outage(primary, flags.get_double("at")));
  } else if (scenario == "transient") {
    plan.specs.push_back(fault::FaultSpec::transient(primary, flags.get_double("p")));
  } else if (scenario == "degrade") {
    plan.specs.push_back(fault::FaultSpec::degrade_links(primary, flags.get_double("factor"),
                                                         fault::LinkScope::InterNode));
  } else if (scenario == "straggler") {
    plan.specs.push_back(
        fault::FaultSpec::straggler(flags.get_int("rank"), flags.get_double("delay")));
  } else if (scenario == "rank_loss") {
    // Kill-at-virtual-time-T: the rank goes silent shortly before T (a
    // window wide enough to be sure the survivors are parked in a pending
    // rendezvous with it when the loss event fires — the state quiesce
    // drains), then is declared permanently lost at T.
    const int rank = flags.get_int("rank");
    const SimTime at = flags.get_double("at");
    const SimTime silent_from = std::max(0.0, at - 2.0 * flags.get_double("interval"));
    plan.specs.push_back(fault::FaultSpec::straggler(rank, 10.0 * at + 1000.0, silent_from));
    plan.specs.push_back(fault::FaultSpec::lose_rank(rank, at));
  } else if (scenario == "rejoin") {
    // rank_loss followed by grow-back: the same silent-window kill, with the
    // straggler bounded at the loss instant so the rank comes back healthy,
    // then a rank_rejoin at --rejoin-at (auto-placed far past the first
    // workload phase when 0, so the grow event fires into an idle cluster).
    const int rank = flags.get_int("rank");
    const SimTime at = flags.get_double("at");
    const SimTime interval = flags.get_double("interval");
    const SimTime silent_from = std::max(0.0, at - 2.0 * interval);
    SimTime back = flags.get_double("rejoin-at");
    if (back <= 0.0) {
      back = at + 100.0 * flags.get_int("iterations") * (interval + 1000.0);
    }
    MCRDL_REQUIRE(back > at, "--rejoin-at must be after the loss instant --at");
    plan.specs.push_back(
        fault::FaultSpec::straggler(rank, 10.0 * at + 1000.0, silent_from, at));
    plan.specs.push_back(fault::FaultSpec::lose_rank(rank, at));
    plan.specs.push_back(fault::FaultSpec::rejoin_rank(rank, back));
  } else if (scenario != "none") {
    throw InvalidArgument("unknown scenario: " + scenario +
                          " (want outage|transient|degrade|straggler|rank_loss|rejoin|none)");
  }
  return plan;
}

bool plan_has_rank_loss(const fault::FaultPlan& plan) {
  for (const fault::FaultSpec& s : plan.specs) {
    if (s.kind == fault::FaultKind::RankLoss) return true;
  }
  return false;
}

// Latest rejoin instant in the plan (0 when the plan has none).
SimTime plan_last_rejoin_us(const fault::FaultPlan& plan) {
  SimTime last = 0.0;
  for (const fault::FaultSpec& s : plan.specs) {
    if (s.kind == fault::FaultKind::RankRejoin) last = std::max(last, s.from_us);
  }
  return last;
}

// Two-phase workload for grow-back plans: phase one is the rank_loss
// workload (the casualty breaks out when declared lost, the survivors
// finish on the shrunk world), then every rank parks until just past the
// last rejoin instant — a virtual-time barrier, so the grow event fires
// into an idle cluster — and phase two runs the same loop over the restored
// full world. A full-world allreduce makes every participant's value equal,
// so the differential check is simply that all ranks finished phase two and
// agree.
RunResult run_rejoin_workload(ClusterContext& cluster, McrDl& mcr, const std::string& backend,
                              int iters, std::size_t elems, SimTime interval_us,
                              SimTime rejoin_us) {
  RunResult out;
  out.finals.assign(cluster.world_size(), 0.0);
  out.died.assign(cluster.world_size(), false);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({static_cast<long long>(elems)}, DType::F32, 1.0,
                            cluster.device(rank));
    for (int i = 0; i < iters; ++i) {
      if (cluster.faults().rank_lost(rank)) {
        out.died[rank] = true;
        break;
      }
      try {
        api.all_reduce(backend, t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        out.died[rank] = true;
        break;
      }
      if (interval_us > 0.0) cluster.scheduler().sleep_for(interval_us);
    }
    const SimTime wake = rejoin_us + interval_us + 1.0;
    if (cluster.scheduler().now() < wake) {
      cluster.scheduler().sleep_for(wake - cluster.scheduler().now());
    }
    for (int i = 0; i < iters; ++i) {
      api.all_reduce(backend, t, ReduceOp::Sum);
      if (interval_us > 0.0) cluster.scheduler().sleep_for(interval_us);
    }
    api.synchronize();
    out.finals[rank] = t.get(0);
  });
  out.end_time_us = cluster.scheduler().now();
  out.comm_time_us = mcr.logger().comm_time(0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("system", "lassen", "node architecture: lassen | theta-gpu");
  flags.define("gpus", "8", "world size");
  flags.define("backends", "nccl,mv2-gdr", "preference order; first is the workload's choice");
  flags.define("iterations", "12", "allreduce iterations");
  flags.define("size", "4m", "message size per allreduce");
  flags.define("interval", "200", "virtual us between iterations");
  flags.define("scenario", "outage",
               "built-in plan: outage|transient|degrade|straggler|rank_loss|rejoin|none");
  flags.define("at", "1000", "fault instant in virtual us (scenario=outage|rank_loss|rejoin)");
  flags.define("rejoin-at", "0",
               "rejoin instant in virtual us (scenario=rejoin; 0 = auto, well past phase one)");
  flags.define("p", "0.3", "per-attempt failure probability (scenario=transient)");
  flags.define("factor", "4", "inter-node beta multiplier (scenario=degrade)");
  flags.define("rank", "1", "delayed or killed rank (scenario=straggler|rank_loss|rejoin)");
  flags.define("delay", "500", "per-op straggler delay in us (scenario=straggler)");
  flags.define("watchdog", "0", "rendezvous watchdog deadline in us (0 = off)");
  flags.define("seed", "42", "fault-decision seed");
  flags.define("plan", "", "load a fault plan file instead of a built-in scenario");
  flags.define("trace", "", "write a Chrome trace of the chaos run to this path");
  flags.define("checkpoint-out", "", "save the post-run runtime checkpoint to this path");
  flags.define("checkpoint-in", "", "restore a runtime checkpoint right after init");
  flags.define("threads", "1", "execution-engine worker threads (1 = serial baton)");
  try {
    if (!flags.parse(argc, argv)) return 0;

    const int world = flags.get_int("gpus");
    const net::SystemConfig config = flags.get("system") == "lassen"
                                         ? net::SystemConfig::lassen((world + 3) / 4)
                                         : net::SystemConfig::theta_gpu((world + 7) / 8);
    const std::vector<std::string> backends = flags.get_list("backends");
    MCRDL_REQUIRE(!backends.empty(), "need at least one backend");
    const std::string primary = backends.front();
    const int iters = flags.get_int("iterations");
    const std::size_t elems = parse_size(flags.get("size")) / 4;  // f32
    const SimTime interval = flags.get_double("interval");

    const sim::ExecutionConfig exec = sim::ExecutionConfig::from_threads(flags.get_int("threads"));
    const fault::FaultPlan plan = build_plan(flags, primary);
    std::printf("# chaos plan (%d GPUs on %s, %d x %s all_reduce on '%s')\n", world,
                config.name.c_str(), iters, flags.get("size").c_str(), primary.c_str());
    std::printf("%s\n", plan.serialize().c_str());

    // Grow-back plans (rank_loss + rank_rejoin) use the two-phase rejoin
    // workload and the world-restored differential check.
    const SimTime rejoin_at = plan_last_rejoin_us(plan);
    const bool rejoin_mode = plan_has_rank_loss(plan) && rejoin_at > 0.0;

    // --- baseline: identical workload, no faults -------------------------
    ClusterContext base_cluster(config, exec);
    McrDlOptions base_opts;
    base_opts.logging_enabled = true;
    McrDl baseline(&base_cluster, base_opts);
    baseline.init(backends);
    const RunResult base =
        rejoin_mode
            ? run_rejoin_workload(base_cluster, baseline, primary, iters, elems, interval,
                                  rejoin_at)
            : run_workload(base_cluster, baseline, primary, iters, elems, interval);

    // --- chaos run --------------------------------------------------------
    ClusterContext cluster(config, exec);
    McrDlOptions opts;
    opts.logging_enabled = true;
    opts.fault.enabled = true;
    opts.fault.plan = plan;
    McrDl mcr(&cluster, opts);
    mcr.init(backends);
    if (!flags.get("checkpoint-in").empty()) {
      mcr.checkpoint().restore_file(flags.get("checkpoint-in"));
      std::printf("checkpoint restored from %s\n", flags.get("checkpoint-in").c_str());
    }
    const RunResult chaos =
        rejoin_mode
            ? run_rejoin_workload(cluster, mcr, primary, iters, elems, interval, rejoin_at)
            : run_workload(cluster, mcr, primary, iters, elems, interval);

    // --- differential check ----------------------------------------------
    // Plans with a permanent rank loss use the elastic check: the planned
    // casualties must die (and nobody else), and every survivor must agree
    // with every other survivor — the baseline's full-world values are
    // unreachable after a shrink.
    const bool elastic = plan_has_rank_loss(plan);
    int wrong = 0;
    if (rejoin_mode) {
      // Every planned casualty must actually have died in phase one, the
      // world must have grown back to its original size, and every rank must
      // have finished phase two agreeing on the data (a full-world allreduce
      // equalises all participants, so disagreement means the rejoined rank
      // was left out).
      for (const fault::FaultSpec& s : plan.specs) {
        if (s.kind == fault::FaultKind::RankLoss && !chaos.died[s.rank]) ++wrong;
      }
      int alive = 0;
      for (int r = 0; r < world; ++r) {
        if (!cluster.faults().rank_lost(r)) ++alive;
      }
      if (alive != world) ++wrong;
      for (int r = 0; r < world; ++r) {
        if (chaos.finals[r] == 0.0) ++wrong;
        if (chaos.finals[r] != chaos.finals[0]) ++wrong;
      }
      const fault::ResilienceReport& rep = mcr.failover()->report();
      if (rep.ranks_rejoined == 0 || rep.grow_events == 0) ++wrong;
      std::printf("rejoin check: world %d/%d alive, rejoined %llu, grow events %llu\n", alive,
                  world, static_cast<unsigned long long>(rep.ranks_rejoined),
                  static_cast<unsigned long long>(rep.grow_events));
    } else if (elastic) {
      std::vector<int> died, survivors;
      for (int r = 0; r < world; ++r) (chaos.died[r] ? died : survivors).push_back(r);
      for (int r = 0; r < world; ++r) {
        const bool planned = cluster.faults().rank_lost(r);
        if (chaos.died[r] != planned) ++wrong;                      // wrong casualty set
      }
      if (survivors.empty()) ++wrong;                               // nobody finished
      for (int r : survivors) {
        if (chaos.finals[r] != chaos.finals[survivors.front()]) ++wrong;
        if (chaos.finals[r] == 0.0) ++wrong;                        // survivor lost its data
      }
      std::printf("ranks lost:");
      for (int r : died) std::printf(" %d", r);
      std::printf(" | survivors:");
      for (int r : survivors) std::printf(" %d", r);
      std::printf("\n");
    } else {
      for (int r = 0; r < world; ++r) {
        if (chaos.finals[r] != base.finals[r]) ++wrong;
      }
    }

    const fault::ResilienceReport& report = mcr.failover()->report();
    const fault::InjectionStats& stats = cluster.faults().stats();
    std::printf("== resilience report ==\n%s", report.to_string().c_str());
    std::printf("injected: %llu transient, %llu outage rejections, %llu watchdog timeouts\n",
                static_cast<unsigned long long>(stats.transient_injected),
                static_cast<unsigned long long>(stats.outage_rejections),
                static_cast<unsigned long long>(stats.watchdog_timeouts));
    if (stats.straggler_delays > 0) {
      std::printf("injected delay: %s over %llu launches\n",
                  format_time_us(stats.delay_injected_us).c_str(),
                  static_cast<unsigned long long>(stats.straggler_delays));
    }
    std::printf("virtual time: baseline %s, chaos %s (+%.1f%%)\n",
                format_time_us(base.end_time_us).c_str(),
                format_time_us(chaos.end_time_us).c_str(),
                base.end_time_us > 0.0
                    ? 100.0 * (chaos.end_time_us - base.end_time_us) / base.end_time_us
                    : 0.0);
    std::printf("rank-0 comm time: baseline %s, chaos %s\n",
                format_time_us(base.comm_time_us).c_str(),
                format_time_us(chaos.comm_time_us).c_str());

    // Where the traffic actually ran, per backend.
    std::map<std::string, int> ops_by_backend;
    int rerouted_records = 0;
    for (const auto& rec : mcr.logger().records()) {
      if (rec.rank != 0) continue;
      ops_by_backend[rec.backend]++;
      if (rec.rerouted) ++rerouted_records;
    }
    std::printf("rank-0 ops by backend:");
    for (const auto& [name, count] : ops_by_backend) std::printf(" %s=%d", name.c_str(), count);
    std::printf(" (%d rerouted)\n", rerouted_records);

    if (!flags.get("trace").empty()) {
      write_chrome_trace(mcr.logger(), flags.get("trace"));
      std::printf("trace written to %s (rerouted ops are highlighted)\n",
                  flags.get("trace").c_str());
    }

    if (!flags.get("checkpoint-out").empty()) {
      mcr.checkpoint().save_file(flags.get("checkpoint-out"));
      std::printf("checkpoint saved to %s\n", flags.get("checkpoint-out").c_str());
    }

    if (rejoin_mode) {
      std::printf("differential check: %s\n",
                  wrong == 0 ? "PASS — world grew back and all ranks agree"
                             : "FAIL — world did not grow back or ranks diverged");
    } else if (elastic) {
      std::printf("differential check: %s\n",
                  wrong == 0 ? "PASS — planned ranks died, all survivors agree"
                             : "FAIL — wrong casualty set or survivors diverged");
    } else {
      std::printf("differential check: %s\n",
                  wrong == 0 ? "PASS — all ranks match the fault-free run"
                             : "FAIL — ranks diverged from the fault-free run");
    }
    return wrong == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
