// mcrdl_osu — an OSU-Micro-Benchmarks-style latency sweep over the
// simulated backends (the tool behind the paper's Figure 2 methodology).
//
//   ./tools/mcrdl_osu --op=all_to_all_single --system=lassen --gpus=64 ...
//       --backends=nccl,mv2-gdr --sizes=1k,64k,1m,16m
#include <cstdio>

#include "src/backends/backend.h"
#include "src/common/flags.h"
#include "src/common/format.h"
#include "src/tune/tuning.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("op", "all_reduce", "collective to benchmark (Listing-1 name)");
  flags.define("system", "lassen", "node architecture: lassen | theta-gpu");
  flags.define("gpus", "64", "world size");
  flags.define("backends", "mv2-gdr,ompi,nccl,sccl", "backends to compare");
  flags.define("sizes", "1k,4k,16k,64k,256k,1m,4m,16m,64m", "message sizes");
  flags.define("iterations", "3", "timed iterations per point");
  try {
    if (!flags.parse(argc, argv)) return 0;

    OpType op;
    MCRDL_REQUIRE(op_from_name(flags.get("op"), op), "unknown op: " + flags.get("op"));
    const int world = flags.get_int("gpus");
    const std::string system = flags.get("system");
    net::SystemConfig base = system == "lassen" ? net::SystemConfig::lassen((world + 3) / 4)
                                                : net::SystemConfig::theta_gpu((world + 7) / 8);

    TuningSuite suite(base);
    TuningConfig cfg;
    cfg.backends = flags.get_list("backends");
    cfg.ops = {op};
    cfg.sizes = flags.get_size_list("sizes");
    cfg.world_sizes = {world};
    cfg.iterations = flags.get_int("iterations");
    (void)suite.generate(cfg);

    std::printf("# %s, %d GPUs on %s (virtual time)\n", op_name(op), world, base.name.c_str());
    std::vector<std::string> headers = {"Size"};
    for (const auto& b : cfg.backends) headers.push_back(b);
    TextTable t(headers);
    for (std::size_t bytes : cfg.sizes) {
      std::vector<std::string> row = {format_bytes(bytes)};
      for (const auto& b : cfg.backends) {
        row.push_back(format_time_us(suite.measured(b, op, world, bytes)));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
