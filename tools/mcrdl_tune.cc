// mcrdl_tune — the tuning-suite CLI (paper Section V-F, the workflow a
// cluster admin runs once per system).
//
//   ./tools/mcrdl_tune --system=lassen --gpus=64 ...
//       --ops=all_reduce,all_gather,all_to_all_single ...
//       --sizes=1k,16k,256k,4m --output=/tmp/lassen64.tuning
//
// The output file feeds McrDl::set_tuning_table / TuningTable::load and is
// what the "auto" backend consults at runtime.
//
// --online runs the adaptation experiment instead (DESIGN.md §9): an "auto"
// all_reduce loop where the statically-best backend's links are degraded
// mid-run; the online tuner quarantines the casualty and re-routes, and the
// per-window step-time table makes the recovery visible. --output then
// saves the tuner's *learned* table (same text format — it warm-starts a
// later run via TuningTable::load + set_tuning_table). --assert-adapt makes
// the tool exit non-zero unless the tuner switched backends and the
// post-adaptation median step time landed within 10% of the best
// undegraded alternative — the CI smoke contract (tools/ci.sh).
#include <algorithm>
#include <cstdio>

#include "bench/experiments.h"
#include "src/common/flags.h"
#include "src/common/format.h"
#include "src/tune/tuning.h"

using namespace mcrdl;

namespace {

int run_online(const Flags& flags) {
  bench::AdaptOptions opts;
  opts.world = flags.get_int("world");
  opts.bytes = parse_size(flags.get("size"));
  opts.steps = flags.get_int("steps");
  opts.window = flags.get_int("window");
  opts.degrade_factor = flags.get_double("degrade-factor");
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  opts.quick = flags.get_bool("quick");

  std::printf("online adaptation: %d GPUs Lassen, %s all_reduce x %d steps, degrade x%.1f\n",
              opts.world, format_bytes(opts.bytes).c_str(), opts.quick ? 96 : opts.steps,
              opts.degrade_factor);
  const bench::AdaptReport report = bench::run_adapt(opts);

  std::printf("\nstatic winner (degraded mid-run): %s\n", report.degraded_backend.c_str());
  std::printf("best undegraded alternative     : %s\n", report.adapted_backend.c_str());
  std::printf("degrade instant                 : %s\n",
              format_time_us(report.degrade_from_us).c_str());

  TextTable t({"Window (steps)", "static auto", "online auto", report.adapted_backend});
  const bench::BenchSeries* st = report.bench.find("static");
  const bench::BenchSeries* on = report.bench.find("online");
  const bench::BenchSeries* alt = report.bench.find("alt-best");
  for (std::size_t i = 0; i < on->points.size(); ++i) {
    t.add_row({std::to_string(on->points[i].bytes) + "+",
               format_time_us(st->points[i].virtual_us),
               format_time_us(on->points[i].virtual_us),
               format_time_us(alt->points[i].virtual_us)});
  }
  std::printf("\nmean step time per window:\n%s", t.to_string().c_str());

  std::printf("\nswitches    : %llu\n", static_cast<unsigned long long>(report.switches));
  std::printf("quarantines : %llu\n", static_cast<unsigned long long>(report.quarantines));
  std::printf("post-adaptation median step : %s (static %s, target %s)\n",
              format_time_us(report.online_post_us).c_str(),
              format_time_us(report.static_post_us).c_str(),
              format_time_us(report.alt_best_us).c_str());

  const std::string out = flags.get("output");
  if (!out.empty()) {
    TuningTable learned = TuningTable::parse(report.learned_table);
    learned.save(out);
    std::printf("wrote learned table (%zu entries) to %s\n", learned.num_entries(), out.c_str());
  }

  if (flags.get_bool("assert-adapt")) {
    if (report.switches == 0) {
      std::fprintf(stderr, "assert-adapt FAILED: tuner never switched backends\n");
      return 1;
    }
    if (report.online_post_us > 1.10 * report.alt_best_us) {
      std::fprintf(stderr,
                   "assert-adapt FAILED: post-adaptation step %.3fus not within 10%% of the "
                   "undegraded best %.3fus\n",
                   report.online_post_us, report.alt_best_us);
      return 1;
    }
    std::printf("assert-adapt OK\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("system", "lassen", "node architecture: lassen | theta-gpu");
  flags.define("gpus", "16", "comma-separated world sizes to tune, e.g. 16,32,64");
  flags.define("backends", "mv2-gdr,ompi,nccl,sccl", "backends to sweep");
  flags.define("ops", "all_reduce,all_gather,all_to_all_single,broadcast,reduce_scatter",
               "operations to tune");
  flags.define("sizes", "256,1k,4k,16k,64k,256k,1m,4m", "message sizes (k/m/g suffixes)");
  flags.define("iterations", "3", "timed iterations per grid point");
  flags.define("warmup", "1", "warmup iterations per grid point");
  flags.define("output", "", "path for the generated tuning table (empty: stdout only)");
  flags.define("online", "false", "run the online-adaptation experiment instead of the suite");
  flags.define("world", "8", "--online: world size (multiple of 4, Lassen)");
  flags.define("size", "256k", "--online: all_reduce payload size");
  flags.define("steps", "240", "--online: loop steps");
  flags.define("window", "20", "--online: steps per reported window");
  flags.define("degrade-factor", "8", "--online: beta multiplier injected on the static winner");
  flags.define("seed", "42", "--online: tuner seed");
  flags.define("quick", "false", "--online: trimmed CI smoke grid");
  flags.define("assert-adapt", "false",
               "--online: exit non-zero unless the tuner re-routed and step time recovered");
  try {
    if (!flags.parse(argc, argv)) return 0;
    if (flags.get_bool("online")) return run_online(flags);

    const std::string system = flags.get("system");
    MCRDL_REQUIRE(system == "lassen" || system == "theta-gpu",
                  "--system must be lassen or theta-gpu");
    std::vector<int> worlds;
    for (const auto& w : flags.get_list("gpus")) worlds.push_back(std::stoi(w));
    MCRDL_REQUIRE(!worlds.empty(), "--gpus must list at least one world size");

    TuningConfig cfg;
    cfg.backends = flags.get_list("backends");
    cfg.ops.clear();
    for (const auto& name : flags.get_list("ops")) {
      OpType op;
      MCRDL_REQUIRE(op_from_name(name, op), "unknown operation: " + name);
      cfg.ops.push_back(op);
    }
    cfg.sizes = flags.get_size_list("sizes");
    cfg.world_sizes = worlds;
    cfg.iterations = flags.get_int("iterations");
    cfg.warmup = flags.get_int("warmup");

    const int max_world = *std::max_element(worlds.begin(), worlds.end());
    net::SystemConfig base = system == "lassen"
                                 ? net::SystemConfig::lassen((max_world + 3) / 4)
                                 : net::SystemConfig::theta_gpu((max_world + 7) / 8);

    std::printf("tuning %s: %zu backends x %zu ops x %zu sizes x %zu scales = %zu grid points\n",
                base.name.c_str(), cfg.backends.size(), cfg.ops.size(), cfg.sizes.size(),
                worlds.size(),
                cfg.backends.size() * cfg.ops.size() * cfg.sizes.size() * worlds.size());

    TuningSuite suite(base);
    TuningTable table = suite.generate(cfg);

    for (int world : worlds) {
      for (OpType op : cfg.ops) {
        std::printf("\n%s @ %d GPUs:\n", op_name(op), world);
        TextTable t({"Message size", "Backend", "Latency"});
        for (const auto& e : table.entries(op, world)) {
          t.add_row({format_bytes(e.max_bytes), e.backend,
                     format_time_us(suite.measured(e.backend, op, world, e.max_bytes))});
        }
        std::printf("%s", t.to_string().c_str());
      }
    }

    const std::string out = flags.get("output");
    if (!out.empty()) {
      table.save(out);
      std::printf("\nwrote %zu entries to %s\n", table.num_entries(), out.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
