// mcrdl_tune — the tuning-suite CLI (paper Section V-F, the workflow a
// cluster admin runs once per system).
//
//   ./tools/mcrdl_tune --system=lassen --gpus=64 ...
//       --ops=all_reduce,all_gather,all_to_all_single ...
//       --sizes=1k,16k,256k,4m --output=/tmp/lassen64.tuning
//
// The output file feeds McrDl::set_tuning_table / TuningTable::load and is
// what the "auto" backend consults at runtime.
#include <algorithm>
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/format.h"
#include "src/core/tuning.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("system", "lassen", "node architecture: lassen | theta-gpu");
  flags.define("gpus", "16", "comma-separated world sizes to tune, e.g. 16,32,64");
  flags.define("backends", "mv2-gdr,ompi,nccl,sccl", "backends to sweep");
  flags.define("ops", "all_reduce,all_gather,all_to_all_single,broadcast,reduce_scatter",
               "operations to tune");
  flags.define("sizes", "256,1k,4k,16k,64k,256k,1m,4m", "message sizes (k/m/g suffixes)");
  flags.define("iterations", "3", "timed iterations per grid point");
  flags.define("warmup", "1", "warmup iterations per grid point");
  flags.define("output", "", "path for the generated tuning table (empty: stdout only)");
  try {
    if (!flags.parse(argc, argv)) return 0;

    const std::string system = flags.get("system");
    MCRDL_REQUIRE(system == "lassen" || system == "theta-gpu",
                  "--system must be lassen or theta-gpu");
    std::vector<int> worlds;
    for (const auto& w : flags.get_list("gpus")) worlds.push_back(std::stoi(w));
    MCRDL_REQUIRE(!worlds.empty(), "--gpus must list at least one world size");

    TuningConfig cfg;
    cfg.backends = flags.get_list("backends");
    cfg.ops.clear();
    for (const auto& name : flags.get_list("ops")) {
      OpType op;
      MCRDL_REQUIRE(op_from_name(name, op), "unknown operation: " + name);
      cfg.ops.push_back(op);
    }
    cfg.sizes = flags.get_size_list("sizes");
    cfg.world_sizes = worlds;
    cfg.iterations = flags.get_int("iterations");
    cfg.warmup = flags.get_int("warmup");

    const int max_world = *std::max_element(worlds.begin(), worlds.end());
    net::SystemConfig base = system == "lassen"
                                 ? net::SystemConfig::lassen((max_world + 3) / 4)
                                 : net::SystemConfig::theta_gpu((max_world + 7) / 8);

    std::printf("tuning %s: %zu backends x %zu ops x %zu sizes x %zu scales = %zu grid points\n",
                base.name.c_str(), cfg.backends.size(), cfg.ops.size(), cfg.sizes.size(),
                worlds.size(),
                cfg.backends.size() * cfg.ops.size() * cfg.sizes.size() * worlds.size());

    TuningSuite suite(base);
    TuningTable table = suite.generate(cfg);

    for (int world : worlds) {
      for (OpType op : cfg.ops) {
        std::printf("\n%s @ %d GPUs:\n", op_name(op), world);
        TextTable t({"Message size", "Backend", "Latency"});
        for (const auto& e : table.entries(op, world)) {
          t.add_row({format_bytes(e.max_bytes), e.backend,
                     format_time_us(suite.measured(e.backend, op, world, e.max_bytes))});
        }
        std::printf("%s", t.to_string().c_str());
      }
    }

    const std::string out = flags.get("output");
    if (!out.empty()) {
      table.save(out);
      std::printf("\nwrote %zu entries to %s\n", table.num_entries(), out.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
