// mcrdl_serve — replays a multi-tenant job arrival trace through the
// serving scheduler (DESIGN.md §10) and reports per-tenant and aggregate
// job-latency percentiles.
//
//   ./tools/mcrdl_serve                          # seeded 1000-job trace
//   ./tools/mcrdl_serve --jobs 200 --seed 7      # smaller, different seed
//   ./tools/mcrdl_serve --trace arrivals.txt     # replay a trace file
//   ./tools/mcrdl_serve --write-trace arrivals.txt --jobs 500
//   ./tools/mcrdl_serve --chaos-from 2e5 --chaos-until 6e5 --chaos-degrade 8
//
// The replay is deterministic: the same trace (or the same --jobs/--seed)
// and the same scheduler flags produce identical output, byte for byte.
// The trailing `p50 :` / `p99 :` / `deadlocks :` lines are stable and
// machine-parseable; tools/ci.sh greps them in the serve smoke.
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/format.h"
#include "src/sched/serve.h"

using namespace mcrdl;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("trace", "", "arrival trace file to replay (empty = generate)");
  flags.define("write-trace", "", "write the generated trace here and continue");
  flags.define("jobs", "1000", "generated trace length");
  flags.define("seed", "1", "generated trace seed");
  flags.define("tenants", "6", "generated trace tenant count");
  flags.define("mean-interarrival-us", "60000", "generated mean interarrival gap");
  flags.define("system", "lassen", "shared topology: lassen or theta");
  flags.define("nodes", "16", "nodes in the shared topology");
  flags.define("plan", "mixed", "comm routing: mixed, tuned, or a backend name");
  flags.define("oversub", "2.0", "fabric oversubscription (1 = full bisection)");
  flags.define("chaos-from", "0", "chaos window start (virtual us)");
  flags.define("chaos-until", "0", "chaos window end (0 = no chaos)");
  flags.define("chaos-degrade", "8.0", "fabric slowdown inside the chaos window");
  flags.define("dip-from", "0", "capacity dip start (virtual us)");
  flags.define("dip-until", "0", "capacity dip end (0 = no dip)");
  flags.define("dip-nodes", "1", "nodes offline during the capacity dip");
  flags.define("slo-factor", "8.0", "SLO = factor x uncontended service time");
  flags.define("no-breaker", "false", "disable per-tenant SLO breakers");
  flags.define("full-models", "false", "full-size model configs (slower)");

  try {
    if (!flags.parse(argc, argv)) return 0;

    sched::ArrivalTrace trace;
    if (!flags.get("trace").empty()) {
      trace = sched::ArrivalTrace::load(flags.get("trace"));
    } else {
      sched::TraceConfig config;
      config.num_jobs = flags.get_int("jobs");
      config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      config.num_tenants = flags.get_int("tenants");
      config.mean_interarrival_us = flags.get_double("mean-interarrival-us");
      trace = sched::generate_trace(config);
      if (!flags.get("write-trace").empty()) {
        trace.save(flags.get("write-trace"));
        std::printf("wrote %zu-job trace to %s\n", trace.jobs.size(),
                    flags.get("write-trace").c_str());
      }
    }

    sched::ServeConfig config;
    const std::string system = flags.get("system");
    if (system == "lassen") {
      config.system = net::SystemConfig::lassen(flags.get_int("nodes"));
    } else if (system == "theta") {
      config.system = net::SystemConfig::theta_gpu(flags.get_int("nodes"));
    } else {
      throw InvalidArgument("unknown system: " + system + " (lassen or theta)");
    }
    config.plan = flags.get("plan");
    config.fabric_oversubscription = flags.get_double("oversub");
    config.slo_factor = flags.get_double("slo-factor");
    config.breaker_enabled = !flags.get_bool("no-breaker");
    config.quick_models = !flags.get_bool("full-models");
    if (flags.get_double("chaos-until") > flags.get_double("chaos-from")) {
      config.chaos.push_back(sched::ChaosWindow{flags.get_double("chaos-from"),
                                                flags.get_double("chaos-until"),
                                                flags.get_double("chaos-degrade")});
    }
    if (flags.get_double("dip-until") > flags.get_double("dip-from")) {
      config.dips.push_back(sched::CapacityDip{flags.get_double("dip-from"),
                                               flags.get_double("dip-until"),
                                               flags.get_int("dip-nodes")});
    }

    sched::ServeScheduler scheduler(config);
    const sched::ServeResult result = scheduler.run(trace);

    std::printf("mcrdl_serve: %zu jobs on %s x%d (%d ranks), plan=%s, oversub=%.2f%s\n\n",
                trace.jobs.size(), config.system.name.c_str(), config.system.num_nodes,
                config.system.world_size(), config.plan.c_str(),
                config.fabric_oversubscription,
                config.chaos.empty() ? "" : ", chaos window active");

    TextTable t({"Tenant", "QoS", "Completed", "Rejected", "Shed", "p50 (us)", "p99 (us)",
                 "Mean (us)"});
    for (const auto& [tenant, stats] : result.tenants) {
      char p50[32], p99[32], mean[32];
      std::snprintf(p50, sizeof(p50), "%.1f", stats.p50_latency_us);
      std::snprintf(p99, sizeof(p99), "%.1f", stats.p99_latency_us);
      std::snprintf(mean, sizeof(mean), "%.1f", stats.mean_latency_us);
      t.add_row({tenant, sched::qos_name(stats.qos), std::to_string(stats.completed),
                 std::to_string(stats.rejected), std::to_string(stats.shed), p50, p99, mean});
    }
    std::printf("%s\n", t.to_string().c_str());

    std::printf("completed : %llu\n", static_cast<unsigned long long>(result.completed));
    std::printf("rejected : %llu\n", static_cast<unsigned long long>(result.rejected));
    std::printf("shed : %llu\n", static_cast<unsigned long long>(result.shed));
    std::printf("deadlocks : %llu\n", static_cast<unsigned long long>(result.deadlocks));
    std::printf("p50 : %.3f us\n", result.p50_latency_us);
    std::printf("p99 : %.3f us\n", result.p99_latency_us);
    std::printf("mean : %.3f us\n", result.mean_latency_us);
    if (!config.dips.empty()) {
      std::printf("unshed_probes : %llu\n",
                  static_cast<unsigned long long>(result.unshed_probes));
    }
    std::printf("makespan : %.3f us\n", result.makespan_us);
    std::printf("utilization : %.4f\n", result.avg_utilization);
    std::printf("peak_contention : %.2f\n", result.peak_contention);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcrdl_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
