// bench_export — runs a paper experiment and writes its results as a
// machine-readable BENCH_<experiment>.json perf-trajectory file (schema
// mcrdl-bench-v1, documented in bench/experiments.h and DESIGN.md §8).
//
//   bench_export --experiment fig2 [--out DIR] [--quick]
//   bench_export --check BENCH_fig2.json
//   bench_export --list
//
// Experiments come from the registry in bench/experiments.h; --list prints
// every registered name with its one-line description. --quick trims the
// sweep for CI smoke runs. --check parses an existing file with the strict
// JSON parser and validates the schema; for fig2 it additionally requires
// at least one series whose points sweep strictly increasing message sizes,
// so a truncated or reordered export fails CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/experiments.h"
#include "src/common/status.h"
#include "src/obs/json.h"

using namespace mcrdl;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --experiment %s [--out DIR] [--quick] [--threads N]\n"
               "       %s --check FILE\n"
               "       %s --list\n"
               "  --threads N   execution engine: 1 = serial baton (default),\n"
               "                N > 1 = ParallelShards with N worker threads\n",
               argv0, bench::experiment_names().c_str(), argv0, argv0);
  return 2;
}

int list_experiments() {
  for (const bench::Experiment& experiment : bench::experiment_registry()) {
    std::printf("%-8s %s\n", experiment.name.c_str(), experiment.description.c_str());
  }
  return 0;
}

// Validates the mcrdl-bench-v1 schema; throws InvalidArgument on violation.
void check_schema(const obs::JsonValue& doc) {
  if (doc.at("schema").str != bench::kBenchSchema) {
    throw InvalidArgument("unexpected schema tag: " + doc.at("schema").str);
  }
  const std::string experiment = doc.at("experiment").str;
  const auto& series = doc.at("series");
  if (!series.is_array() || series.array.empty()) {
    throw InvalidArgument("bench file has no series");
  }
  bool has_increasing_bytes_sweep = false;
  bool has_hotpath_speedup = false;
  for (const auto& s : series.array) {
    if (!s.at("name").is_string() || !s.at("backend").is_string()) {
      throw InvalidArgument("series needs string name and backend");
    }
    const auto& points = s.at("points");
    if (!points.is_array()) throw InvalidArgument("series.points must be an array");
    double prev_bytes = -1.0;
    bool increasing = points.array.size() >= 2;
    for (const auto& p : points.array) {
      for (const char* field : {"world", "bytes", "virtual_us", "items_per_s"}) {
        if (!p.at(field).is_number()) {
          throw InvalidArgument(std::string("point field is not a number: ") + field);
        }
      }
      if (p.at("virtual_us").number < 0.0) throw InvalidArgument("negative virtual_us");
      if (p.at("bytes").number <= prev_bytes) increasing = false;
      prev_bytes = p.at("bytes").number;
      // The hotpath speedup series carries the bucketed/slow wall-clock
      // throughput ratio. Committed exports show >=5x; the CI gate is
      // deliberately lenient (1.5x) so a loaded runner cannot flake it,
      // while still catching a fast path that regressed to slow-path cost.
      if (experiment == "hotpath" && s.at("name").str == "speedup") {
        if (p.at("items_per_s").number < 1.5) {
          throw InvalidArgument("hotpath speedup dropped below 1.5x at bytes=" +
                                std::to_string(p.at("bytes").number));
        }
        has_hotpath_speedup = true;
      }
    }
    if (increasing) has_increasing_bytes_sweep = true;
  }
  // Microbench exports must contain a real message-size sweep; a report
  // with one point per series (or shuffled sizes) is a broken export.
  if (experiment == "fig2" && !has_increasing_bytes_sweep) {
    throw InvalidArgument(
        "fig2 export has no series with >= 2 points of strictly increasing bytes");
  }
  if (experiment == "hotpath" && !has_hotpath_speedup) {
    throw InvalidArgument("hotpath export has no populated speedup series");
  }
  // Composite-collective contract (DESIGN.md §15). Two orderings make the
  // experiment worth exporting, checked on whatever grid the file carries
  // (full or --quick) so the CI gate and the committed export share a rule:
  //   * algorithm — at every node count >= 2, the hierarchical allreduce
  //     beats the flat single-backend choice at the largest swept message;
  //   * schedule — on the 3D-CNN plan, hier+overlap beats the identical
  //     hier plan without the overlap scheduler, at every model world.
  if (experiment == "hier") {
    auto last_virtual_us = [](const obs::JsonValue& s) {
      return s.at("points").array.back().at("virtual_us").number;
    };
    int compared_nodes = 0;
    int compared_worlds = 0;
    for (const auto& flat : series.array) {
      const std::string& name = flat.at("name").str;
      const std::string prefix = "all_reduce/flat/n";
      if (name.rfind(prefix, 0) != 0 || flat.at("points").array.empty()) continue;
      const int nodes = std::atoi(name.c_str() + prefix.size());
      if (nodes < 2) continue;
      for (const auto& hier : series.array) {
        if (hier.at("name").str != "all_reduce/hier/n" + std::to_string(nodes)) continue;
        if (hier.at("points").array.empty()) continue;
        if (last_virtual_us(hier) >= last_virtual_us(flat)) {
          throw InvalidArgument("hier allreduce does not beat flat at n=" +
                                std::to_string(nodes) + " for the largest message");
        }
        ++compared_nodes;
      }
    }
    const obs::JsonValue* cnn_hier = nullptr;
    const obs::JsonValue* cnn_overlap = nullptr;
    for (const auto& s : series.array) {
      if (s.at("name").str == "cnn3d/hier") cnn_hier = &s;
      if (s.at("name").str == "cnn3d/hier+overlap") cnn_overlap = &s;
    }
    if (cnn_hier != nullptr && cnn_overlap != nullptr) {
      for (const auto& hp : cnn_hier->at("points").array) {
        for (const auto& op : cnn_overlap->at("points").array) {
          if (op.at("world").number != hp.at("world").number) continue;
          if (op.at("virtual_us").number >= hp.at("virtual_us").number) {
            throw InvalidArgument("cnn3d hier+overlap does not beat hier at world=" +
                                  std::to_string(static_cast<int>(hp.at("world").number)));
          }
          ++compared_worlds;
        }
      }
    }
    if (compared_nodes == 0 || compared_worlds == 0) {
      throw InvalidArgument("hier export is missing its flat-vs-hier or cnn3d comparison");
    }
  }
}

int check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "bench_export: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    check_schema(obs::parse_json(buf.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_export: %s failed validation: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: valid %s file\n", path.c_str(), bench::kBenchSchema);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string experiment;
  std::string out_dir = ".";
  std::string check_path;
  bool quick = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--experiment" && i + 1 < argc) {
      experiment = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) return usage(argv[0]);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--list") {
      return list_experiments();
    } else {
      return usage(argv[0]);
    }
  }

  if (!check_path.empty()) return check_file(check_path);
  if (experiment.empty()) return usage(argv[0]);

  const bench::Experiment* entry = bench::find_experiment(experiment);
  if (entry == nullptr) {
    std::fprintf(stderr, "bench_export: unknown experiment '%s'\n", experiment.c_str());
    return usage(argv[0]);
  }

  bench::BenchReport report;
  try {
    bench::ExperimentOptions options;
    options.quick = quick;
    options.threads = threads;
    report = entry->run(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_export: experiment failed: %s\n", e.what());
    return 1;
  }

  const std::string json = bench::to_bench_json(report);
  // The writer eats its own dog food: a file that would fail --check is
  // never written.
  check_schema(obs::parse_json(json));

  const std::string path = out_dir + "/BENCH_" + experiment + ".json";
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "bench_export: cannot write %s\n", path.c_str());
    return 1;
  }
  out << json << "\n";
  out.close();
  std::size_t points = 0;
  for (const auto& s : report.series) points += s.points.size();
  std::printf("wrote %s (%zu series, %zu points%s)\n", path.c_str(), report.series.size(),
              points, quick ? ", quick grid" : "");
  return 0;
}
