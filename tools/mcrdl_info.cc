// mcrdl_info — prints the registered backends, their capability matrix and
// performance personalities, and the built-in system topologies.
//
//   ./tools/mcrdl_info
#include <cstdio>

#include "src/backends/backend.h"
#include "src/common/format.h"
#include "src/net/cost.h"

using namespace mcrdl;

int main() {
  std::printf("MCR-DL simulated communication backends\n\n");
  {
    TextTable t({"Backend", "Family", "Launch", "Vector collectives", "Native op coverage",
                 "Stream-aware"});
    auto profiles = net::all_backend_profiles();
    profiles.push_back(net::gloo_profile());
    for (const auto& p : profiles) {
      int native = 0, total = 0;
      for (OpType op : {OpType::Send, OpType::Recv, OpType::Broadcast, OpType::Reduce,
                        OpType::AllReduce, OpType::AllGather, OpType::AllGatherV, OpType::Gather,
                        OpType::GatherV, OpType::Scatter, OpType::ScatterV, OpType::ReduceScatter,
                        OpType::AllToAll, OpType::AllToAllSingle, OpType::AllToAllV,
                        OpType::Barrier}) {
        ++total;
        native += p.is_native(op);
      }
      char cov[32], launch[32];
      std::snprintf(cov, sizeof(cov), "%d/%d", native, total);
      std::snprintf(launch, sizeof(launch), "%.1f us", p.launch_overhead_us);
      t.add_row({p.display_name, p.stream_aware ? "stream (NCCL-like)" : "host MPI", launch,
                 p.native_vector_collectives ? "native" : "emulated by MCR-DL", cov,
                 p.stream_aware ? "yes" : "no"});
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf("\nBuilt-in system topologies\n\n");
  {
    TextTable t({"System", "GPUs/node", "Intra-node", "Inter-node (per GPU)", "NIC/node",
                 "GPU peak"});
    for (const auto& cfg :
         {net::SystemConfig::lassen(1), net::SystemConfig::theta_gpu(1)}) {
      char intra[48], inter[48], nic[32], peak[32];
      std::snprintf(intra, sizeof(intra), "%.0f GB/s @ %.1f us", cfg.intra_node.bandwidth_gbps,
                    cfg.intra_node.latency_us);
      std::snprintf(inter, sizeof(inter), "%.0f GB/s @ %.1f us", cfg.inter_node.bandwidth_gbps,
                    cfg.inter_node.latency_us);
      std::snprintf(nic, sizeof(nic), "%.0f GB/s", cfg.nic_bandwidth_gbps);
      std::snprintf(peak, sizeof(peak), "%.0f TFLOPs", cfg.gpu_tflops);
      t.add_row({cfg.name, std::to_string(cfg.gpus_per_node), intra, inter, nic, peak});
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf("\nMCR-DL emulates every missing native operation (see Table I bench).\n");
  return 0;
}
