// mcrdl_info — prints the registered backends, their capability matrix and
// performance personalities, the built-in system topologies, the available
// execution models, and the serving layer's default scheduler configuration.
//
//   ./tools/mcrdl_info
#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/backends/backend.h"
#include "src/coll/spec.h"
#include "src/common/format.h"
#include "src/net/cost.h"
#include "src/sched/admission.h"
#include "src/sim/execution_model.h"

using namespace mcrdl;

int main() {
  std::printf("MCR-DL simulated communication backends\n\n");
  {
    TextTable t({"Backend", "Family", "Launch", "Vector collectives", "Native op coverage",
                 "Stream-aware"});
    auto profiles = net::all_backend_profiles();
    profiles.push_back(net::gloo_profile());
    for (const auto& p : profiles) {
      int native = 0, total = 0;
      for (OpType op : {OpType::Send, OpType::Recv, OpType::Broadcast, OpType::Reduce,
                        OpType::AllReduce, OpType::AllGather, OpType::AllGatherV, OpType::Gather,
                        OpType::GatherV, OpType::Scatter, OpType::ScatterV, OpType::ReduceScatter,
                        OpType::AllToAll, OpType::AllToAllSingle, OpType::AllToAllV,
                        OpType::Barrier}) {
        ++total;
        native += p.is_native(op);
      }
      char cov[32], launch[32];
      std::snprintf(cov, sizeof(cov), "%d/%d", native, total);
      std::snprintf(launch, sizeof(launch), "%.1f us", p.launch_overhead_us);
      t.add_row({p.display_name, p.stream_aware ? "stream (NCCL-like)" : "host MPI", launch,
                 p.native_vector_collectives ? "native" : "emulated by MCR-DL", cov,
                 p.stream_aware ? "yes" : "no"});
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf("\nRegistered composite algorithms (DESIGN.md §15)\n\n");
  {
    TextTable t({"Pattern", "Description"});
    for (const coll::CompositeInfo& info : coll::registered_composites()) {
      t.add_row({info.pattern, info.description});
    }
    std::printf("%s", t.to_string().c_str());
    std::string arms;
    for (const std::string& arm : coll::composite_arms({"nccl", "mv2-gdr"})) {
      if (!arms.empty()) arms += ", ";
      arms += arm;
    }
    std::printf(
        "\nComposite strings are accepted anywhere a backend string is once\n"
        "McrDlOptions::coll.enabled is set; coll.tuner_arms additionally offers\n"
        "them as \"auto\" arms (e.g. with nccl + mv2-gdr loaded: %s).\n",
        arms.c_str());
  }

  std::printf("\nBuilt-in system topologies\n\n");
  {
    TextTable t({"System", "GPUs/node", "Intra-node", "Inter-node (per GPU)", "NIC/node",
                 "GPU peak"});
    for (const auto& cfg :
         {net::SystemConfig::lassen(1), net::SystemConfig::theta_gpu(1)}) {
      char intra[48], inter[48], nic[32], peak[32];
      std::snprintf(intra, sizeof(intra), "%.0f GB/s @ %.1f us", cfg.intra_node.bandwidth_gbps,
                    cfg.intra_node.latency_us);
      std::snprintf(inter, sizeof(inter), "%.0f GB/s @ %.1f us", cfg.inter_node.bandwidth_gbps,
                    cfg.inter_node.latency_us);
      std::snprintf(nic, sizeof(nic), "%.0f GB/s", cfg.nic_bandwidth_gbps);
      std::snprintf(peak, sizeof(peak), "%.0f TFLOPs", cfg.gpu_tflops);
      t.add_row({cfg.name, std::to_string(cfg.gpus_per_node), intra, inter, nic, peak});
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf("\nExecution models (DESIGN.md §11)\n\n");
  {
    TextTable t({"Model", "Selector", "Shards", "Time sync", "Role"});
    t.add_row({sim::execution_model_name(sim::ExecutionModelKind::SerialBaton),
               "--threads 1 (default)", "1", "baton (no barrier)",
               "golden-trace referee"});
    char shards[64];
    std::snprintf(shards, sizeof(shards), "2..%d (threads, capped by actors)",
                  kMaxShards);
    t.add_row({sim::execution_model_name(sim::ExecutionModelKind::ParallelShards),
               "--threads N", shards, "lockstep epochs of virtual time",
               "wall-clock speed at scale"});
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\nBoth engines speak the same wait-token protocol; default-config\n"
      "traces are byte-identical across them. The parallel engine drains\n"
      "every timed event of a virtual instant (one barrier epoch), then runs\n"
      "all actors woken at that instant concurrently across shards; no actor\n"
      "ever observes a clock ahead of another shard. This host exposes %u\n"
      "hardware thread%s.\n",
      std::max(1u, std::thread::hardware_concurrency()),
      std::thread::hardware_concurrency() == 1 ? "" : "s");

  std::printf("\nServing-layer scheduler defaults (DESIGN.md §10)\n\n");
  {
    const sched::AdmissionConfig config;
    TextTable t({"QoS class", "Bandwidth weight", "Rank quota", "Queue depth"});
    for (sched::QosClass qos : sched::all_qos_classes()) {
      const sched::QosPolicy& policy = config.policy(qos);
      char share[32];
      std::snprintf(share, sizeof(share), "%.0f%% of world", policy.rank_share * 100.0);
      t.add_row({sched::qos_name(qos), std::to_string(static_cast<int>(sched::qos_weight(qos))),
                 share, std::to_string(policy.max_queued)});
    }
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\nAdmission: strict priority across classes, FIFO within a class;\n"
      "jobs exceeding their class quota are rejected up front (never queued),\n"
      "full queues reject with back-pressure. See tools/mcrdl_serve.\n");

  std::printf("\nMCR-DL emulates every missing native operation (see Table I bench).\n");
  return 0;
}
