#!/usr/bin/env bash
# Tier-1 verification from a pristine tree: configure, build, and run the
# full test suite (plus an explicit pass over the fault-labelled suite) in a
# scratch build directory, so a stale incremental `build/` — now untracked —
# can never hide breakage.
#
# Usage: tools/ci.sh [build-dir]     (default: build-ci, wiped every run)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== MCR-DL CI: clean configure + build + ctest =="
echo "   repo:  ${repo_root}"
echo "   build: ${build_dir} (removed first)"

rm -rf "${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "${jobs}"

cd "${build_dir}"
ctest --output-on-failure -j "${jobs}"
# The fault/chaos suite guards the failover invariants (DESIGN.md §7); run
# it by label too so a labelling regression is caught even if test names move.
ctest --output-on-failure -j "${jobs}" -L fault

echo "== CI passed =="
