#!/usr/bin/env bash
# Tier-1 verification from a pristine tree: configure, build, and run the
# full test suite (plus an explicit pass over the fault-labelled suite) in a
# scratch build directory, so a stale incremental `build/` — now untracked —
# can never hide breakage.
#
# Usage: tools/ci.sh [build-dir]     (default: build-ci, wiped every run)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== MCR-DL CI: clean configure + build + ctest =="
echo "   repo:  ${repo_root}"
echo "   build: ${build_dir} (removed first)"

rm -rf "${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "${jobs}"

cd "${build_dir}"
ctest --output-on-failure -j "${jobs}"
# The fault/chaos suite guards the failover invariants (DESIGN.md §7); run
# it by label too so a labelling regression is caught even if test names move.
ctest --output-on-failure -j "${jobs}" -L fault
# Same for the observability suite (DESIGN.md §8): metrics, strict JSON, and
# the golden-trace byte-identity that keeps instrumentation passive.
ctest --output-on-failure -j "${jobs}" -L obs
# And the tuning suite (DESIGN.md §9): static-table semantics plus the
# online adaptive tuner's policy, quarantine, and determinism contracts.
ctest --output-on-failure -j "${jobs}" -L tune
# And the serving suite (DESIGN.md §10): admission, placement, contention,
# and deterministic trace replay.
ctest --output-on-failure -j "${jobs}" -L sched
# And the composite-collective suite (DESIGN.md §15): algorithm-string
# parsing, hier/rsag correctness against flat allreduce, the overlap
# scheduler's interleaving, and elastic shrink/rejoin across in-flight
# composites.
ctest --output-on-failure -j "${jobs}" -L coll

# Chaos-differential smoke: kill rank 3 at t=2500us mid-run and require a
# clean elastic recovery — exit 0 (planned casualty only, survivors agree)
# AND at least one op actually quiesced and replayed on the shrunk
# communicator. mv2-gdr is host-synchronous, so the replay is observable in
# `recovered ops` (stream backends surface cancels at synchronize instead).
echo "== chaos smoke: rank_loss recovery =="
chaos_out="$("${build_dir}/tools/mcrdl_chaos" --scenario=rank_loss --rank=3 --at=2500 \
    --watchdog=100000 --backends=mv2-gdr --size=64k)"
echo "${chaos_out}"
recovered="$(sed -n 's/.*recovered ops *: *//p' <<<"${chaos_out}")"
if [ -z "${recovered}" ] || [ "${recovered}" -le 0 ]; then
  echo "chaos smoke FAILED: expected recovered ops > 0, got '${recovered:-none}'" >&2
  exit 1
fi

# Rejoin smoke (DESIGN.md §13): the same casualty comes back. The scripted
# loss must still quiesce and replay (recovered ops > 0, same mv2-gdr recipe
# as above), the grow phase must fire (ranks rejoined > 0), and the post-
# recovery world must be back to full size — the tool's differential check
# exits non-zero otherwise. The scenario must also be engine-independent:
# the serial baton and four shards produce byte-identical Chrome traces.
echo "== chaos smoke: rank_rejoin grow-back =="
bench_dir="${build_dir}/bench-export"
mkdir -p "${bench_dir}"
rejoin_out="$(timeout 300 "${build_dir}/tools/mcrdl_chaos" --scenario=rejoin --rank=3 \
    --at=2500 --watchdog=100000 --backends=mv2-gdr --size=64k \
    --trace="${bench_dir}/trace_rejoin_serial.json")"
echo "${rejoin_out}"
rejoin_recovered="$(sed -n 's/.*recovered ops *: *//p' <<<"${rejoin_out}")"
rejoined="$(sed -n 's/.*ranks rejoined *: *//p' <<<"${rejoin_out}")"
if [ -z "${rejoin_recovered}" ] || [ "${rejoin_recovered}" -le 0 ]; then
  echo "rejoin smoke FAILED: expected recovered ops > 0, got '${rejoin_recovered:-none}'" >&2
  exit 1
fi
if [ -z "${rejoined}" ] || [ "${rejoined}" -le 0 ]; then
  echo "rejoin smoke FAILED: expected ranks rejoined > 0, got '${rejoined:-none}'" >&2
  exit 1
fi
timeout 300 "${build_dir}/tools/mcrdl_chaos" --scenario=rejoin --rank=3 \
    --at=2500 --watchdog=100000 --backends=mv2-gdr --size=64k --threads=4 \
    --trace="${bench_dir}/trace_rejoin_shards.json" >/dev/null
if ! cmp -s "${bench_dir}/trace_rejoin_serial.json" "${bench_dir}/trace_rejoin_shards.json"; then
  echo "rejoin smoke FAILED: serial and 4-shard rejoin traces differ" >&2
  diff "${bench_dir}/trace_rejoin_serial.json" "${bench_dir}/trace_rejoin_shards.json" >&2 || true
  exit 1
fi

# Checkpoint round-trip smoke (DESIGN.md §13): save the runtime state after
# the rejoin run, restore it into a fresh no-op run, and save again — the two
# files must be byte-identical (save -> restore -> save is the format's
# determinism contract; restore counters are deliberately not serialized).
echo "== checkpoint smoke: save/restore/save byte-identity =="
timeout 300 "${build_dir}/tools/mcrdl_chaos" --scenario=rejoin --rank=3 --at=2500 \
    --watchdog=100000 --backends=mv2-gdr --size=64k \
    --checkpoint-out="${bench_dir}/ckpt_a.txt" >/dev/null
timeout 300 "${build_dir}/tools/mcrdl_chaos" --scenario=none --iterations=0 \
    --checkpoint-in="${bench_dir}/ckpt_a.txt" \
    --checkpoint-out="${bench_dir}/ckpt_b.txt" >/dev/null
if ! cmp -s "${bench_dir}/ckpt_a.txt" "${bench_dir}/ckpt_b.txt"; then
  echo "checkpoint smoke FAILED: save -> restore -> save is not byte-identical" >&2
  diff "${bench_dir}/ckpt_a.txt" "${bench_dir}/ckpt_b.txt" >&2 || true
  exit 1
fi

# Perf-trajectory smoke: export the Figure 2 microbenchmark on the quick
# grid and validate the BENCH file — the strict parser must accept it and at
# least one series must sweep monotonically increasing message sizes.
echo "== bench_export smoke: fig2 perf trajectory =="
bench_dir="${build_dir}/bench-export"
mkdir -p "${bench_dir}"
"${build_dir}/tools/bench_export" --experiment fig2 --quick --out "${bench_dir}"
"${build_dir}/tools/bench_export" --check "${bench_dir}/BENCH_fig2.json"

# Adaptation smoke: degrade the statically-best backend mid-run and require
# the online tuner to re-route (switches > 0) and the post-adaptation step
# time to land within 10% of the best undegraded alternative — the tool's
# --assert-adapt exit code enforces both (DESIGN.md §9).
echo "== adaptation smoke: mcrdl_tune --online =="
adapt_out="$("${build_dir}/tools/mcrdl_tune" --online=true --quick=true --assert-adapt=true)"
echo "${adapt_out}"
switches="$(sed -n 's/^switches *: *//p' <<<"${adapt_out}")"
if [ -z "${switches}" ] || [ "${switches}" -le 0 ]; then
  echo "adaptation smoke FAILED: expected switches > 0, got '${switches:-none}'" >&2
  exit 1
fi

# Serving smoke: replay a seeded multi-tenant trace twice and require a
# byte-identical report (deterministic replay), a sane latency distribution
# (p99 >= p50 > 0), and a deadlock-free admission queue (DESIGN.md §10).
echo "== serve smoke: mcrdl_serve deterministic replay =="
serve_out="$("${build_dir}/tools/mcrdl_serve" --jobs 300 --seed 7 --nodes 8)"
serve_out2="$("${build_dir}/tools/mcrdl_serve" --jobs 300 --seed 7 --nodes 8)"
echo "${serve_out}" | tail -n 10
if [ "${serve_out}" != "${serve_out2}" ]; then
  echo "serve smoke FAILED: two replays of the same seed differ" >&2
  diff <(echo "${serve_out}") <(echo "${serve_out2}") >&2 || true
  exit 1
fi
p50="$(sed -n 's/^p50 *: *\([0-9.]*\).*/\1/p' <<<"${serve_out}")"
p99="$(sed -n 's/^p99 *: *\([0-9.]*\).*/\1/p' <<<"${serve_out}")"
deadlocks="$(sed -n 's/^deadlocks *: *//p' <<<"${serve_out}")"
if [ -z "${p50}" ] || [ -z "${p99}" ] || \
   ! awk -v p50="${p50}" -v p99="${p99}" 'BEGIN { exit !(p50 > 0 && p99 >= p50) }'; then
  echo "serve smoke FAILED: expected p99 >= p50 > 0, got p50='${p50}' p99='${p99}'" >&2
  exit 1
fi
if [ -z "${deadlocks}" ] || [ "${deadlocks}" -ne 0 ]; then
  echo "serve smoke FAILED: expected 0 deadlocks, got '${deadlocks:-none}'" >&2
  exit 1
fi

# Serve perf trajectory: the clean-vs-chaos percentile export must pass the
# strict schema check like every other BENCH file.
echo "== bench_export smoke: serve perf trajectory =="
"${build_dir}/tools/bench_export" --experiment serve --quick --out "${bench_dir}"
"${build_dir}/tools/bench_export" --check "${bench_dir}/BENCH_serve.json"

# Parallel-engine scale smoke (DESIGN.md §11): the sharded engine must be a
# pure wall-clock optimisation — same virtual-time results, byte for byte.
#   1. The same fault-free workload under the serial baton and under four
#      shards must produce byte-identical Chrome traces.
#   2. A small fig8 DS-MoE sweep exported serial and with --threads 4 must
#      produce byte-identical BENCH files (every number in fig8 derives from
#      virtual time, so any divergence means the engines disagreed).
# Both runs sit under `timeout` so a barrier deadlock fails the smoke rather
# than hanging CI; the scale experiment itself then passes the schema check.
echo "== scale smoke: serial vs --threads 4 byte-identity =="
timeout 300 "${build_dir}/tools/mcrdl_chaos" --scenario=none --gpus=8 --iterations=6 \
    --size=256k --trace="${bench_dir}/trace_serial.json" >/dev/null
timeout 300 "${build_dir}/tools/mcrdl_chaos" --scenario=none --gpus=8 --iterations=6 \
    --size=256k --threads=4 --trace="${bench_dir}/trace_shards.json" >/dev/null
if ! cmp -s "${bench_dir}/trace_serial.json" "${bench_dir}/trace_shards.json"; then
  echo "scale smoke FAILED: serial and 4-shard traces differ" >&2
  diff "${bench_dir}/trace_serial.json" "${bench_dir}/trace_shards.json" >&2 || true
  exit 1
fi
timeout 600 "${build_dir}/tools/bench_export" --experiment fig8 --quick --out "${bench_dir}"
mv "${bench_dir}/BENCH_fig8.json" "${bench_dir}/BENCH_fig8_serial.json"
timeout 600 "${build_dir}/tools/bench_export" --experiment fig8 --quick --threads 4 \
    --out "${bench_dir}"
if ! cmp -s "${bench_dir}/BENCH_fig8_serial.json" "${bench_dir}/BENCH_fig8.json"; then
  echo "scale smoke FAILED: fig8 sweep diverges between serial and --threads 4" >&2
  diff "${bench_dir}/BENCH_fig8_serial.json" "${bench_dir}/BENCH_fig8.json" >&2 || true
  exit 1
fi
timeout 600 "${build_dir}/tools/bench_export" --experiment scale --quick --out "${bench_dir}"
"${build_dir}/tools/bench_export" --check "${bench_dir}/BENCH_scale.json"

# Resilience perf trajectory (DESIGN.md §13): shrink-only vs shrink-then-
# rejoin recovery latency and post-recovery throughput, exported on the quick
# grid and validated by the strict schema check like every other BENCH file.
echo "== bench_export smoke: resilience perf trajectory =="
timeout 600 "${build_dir}/tools/bench_export" --experiment resilience --quick --out "${bench_dir}"
"${build_dir}/tools/bench_export" --check "${bench_dir}/BENCH_resilience.json"

# Hot-path perf trajectory (DESIGN.md §14): export the dispatch-throughput
# experiment on the quick grid and validate it — the schema check requires a
# populated speedup series and fails if the bucketed/slow ratio ever drops
# below 1.5x (committed exports show >=5x; the CI gate is lenient so a
# loaded runner cannot flake it, while still catching a fast path that
# regressed to slow-path cost).
echo "== bench_export smoke: hotpath perf trajectory =="
timeout 600 "${build_dir}/tools/bench_export" --experiment hotpath --quick --out "${bench_dir}"
"${build_dir}/tools/bench_export" --check "${bench_dir}/BENCH_hotpath.json"

# Composite-collective perf trajectory (DESIGN.md §15): export the hier
# experiment on the quick grid and validate it — the schema check enforces
# the two orderings that make the subsystem worth having (hierarchical
# allreduce beats flat at every swept node count >= 2 for the largest
# message; hier+overlap beats the identical hier plan on the 3D-CNN model).
echo "== bench_export smoke: hier perf trajectory =="
timeout 600 "${build_dir}/tools/bench_export" --experiment hier --quick --out "${bench_dir}"
"${build_dir}/tools/bench_export" --check "${bench_dir}/BENCH_hier.json"

# Memory-check the dispatch hot path: rebuild the core suite (facade,
# pipeline, fusion/bucketing, logging) with -fsanitize=address and run it by
# label. The arena recycles OpRequests and the bucketing layer slices fused
# buffers back through completion closures — exactly the lifetime games ASan
# catches (use-after-release into the arena, a leaked flush timer's closure,
# a completion callback outliving its Work). Leak detection stays on.
echo "== asan smoke: core dispatch suite under -fsanitize=address =="
asan_dir="${build_dir}-asan"
rm -rf "${asan_dir}"
cmake -B "${asan_dir}" -S "${repo_root}" -DMCRDL_SANITIZE=address
cmake --build "${asan_dir}" -j "${jobs}" --target \
    core_api_test core_fusion_test core_bucketing_test core_pipeline_test \
    core_golden_trace_test core_logger_test core_compression_hook_test \
    core_emulation_test core_trace_test core_persistent_test \
    core_process_groups_test core_composite_work_test
( cd "${asan_dir}" && ctest --output-on-failure -j "${jobs}" -L core )

# Race-check the parallel engine for real: rebuild the sim/sched suites with
# -fsanitize=thread and run them (the execution-model tests drive both
# engines, the serve suite drives the harness on top). A data race fails the
# test binary's exit code, which fails ctest. Deadlock (lock-order) detection
# is off: nested rendezvous completion chains legitimately take two
# rendezvous mutexes in either order, but only ever from the serialized
# event-dispatch context (the baton holder, or the shard controller's event
# phase), so the cycles tsan's static lock graph reports cannot interleave.
# Race detection — the thing the shard engine could actually break — stays on.
echo "== tsan smoke: sim/sched suites under -fsanitize=thread =="
tsan_dir="${build_dir}-tsan"
rm -rf "${tsan_dir}"
cmake -B "${tsan_dir}" -S "${repo_root}" -DMCRDL_SANITIZE=thread
cmake --build "${tsan_dir}" -j "${jobs}" --target \
    sim_scheduler_test sim_execution_model_test sim_device_test sim_stress_test \
    sched_trace_test sched_admission_test sched_tenant_groups_test sched_serve_test \
    coll_spec_test coll_composite_test coll_overlap_test coll_elastic_test
( cd "${tsan_dir}" && TSAN_OPTIONS=detect_deadlocks=0 \
    ctest --output-on-failure -j "${jobs}" -L 'sim|sched|coll' )

echo "== CI passed =="
