// Stress / property tests for the virtual-time substrate: many actors,
// random sleep/condition/event interleavings, full determinism, and stream
// pipelines under load.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/device.h"
#include "src/sim/scheduler.h"

namespace mcrdl::sim {
namespace {

TEST(SchedulerStress, RandomSleepProgramsAreDeterministic) {
  auto run = [](std::uint64_t seed) {
    Scheduler sched;
    std::vector<double> trace;
    for (int a = 0; a < 32; ++a) {
      sched.spawn("a" + std::to_string(a), [&, a] {
        Rng rng(seed * 1000 + a);
        for (int i = 0; i < 50; ++i) {
          sched.sleep_for(rng.uniform(0.1, 10.0));
          trace.push_back(a * 1e6 + sched.now());
        }
      });
    }
    sched.run();
    return trace;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SchedulerStress, ProducersAndConsumersThroughConditions) {
  // 16 producer/consumer pairs over shared queues; all items must arrive in
  // order with no loss under heavy interleaving.
  constexpr int kPairs = 16;
  constexpr int kItems = 100;
  Scheduler sched;
  struct Queue {
    std::vector<int> items;
    std::unique_ptr<SimCondition> cond;
  };
  std::vector<Queue> queues(kPairs);
  for (auto& q : queues) q.cond = std::make_unique<SimCondition>(&sched);
  int consumed_total = 0;
  for (int p = 0; p < kPairs; ++p) {
    sched.spawn("prod" + std::to_string(p), [&, p] {
      Rng rng(static_cast<std::uint64_t>(p));
      for (int i = 0; i < kItems; ++i) {
        sched.sleep_for(rng.uniform(0.01, 1.0));
        queues[static_cast<std::size_t>(p)].items.push_back(i);
        queues[static_cast<std::size_t>(p)].cond->notify_all();
      }
    });
    sched.spawn("cons" + std::to_string(p), [&, p] {
      Queue& q = queues[static_cast<std::size_t>(p)];
      int next = 0;
      while (next < kItems) {
        q.cond->wait([&] { return static_cast<int>(q.items.size()) > next; });
        EXPECT_EQ(q.items[static_cast<std::size_t>(next)], next);
        ++next;
        ++consumed_total;
      }
    });
  }
  sched.run();
  EXPECT_EQ(consumed_total, kPairs * kItems);
}

TEST(SchedulerStress, ManyTimersFireInOrder) {
  Scheduler sched;
  std::vector<double> fired;
  sched.spawn("a", [&] {
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
      const double t = rng.uniform(0.0, 1000.0);
      sched.schedule_at(t, [&fired, &sched] { fired.push_back(sched.now()); });
    }
    sched.sleep_for(2000.0);
  });
  sched.run();
  ASSERT_EQ(fired.size(), 500u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(SchedulerStress, CancelHalfTheTimers) {
  Scheduler sched;
  int fired = 0;
  sched.spawn("a", [&] {
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(sched.schedule_after(10.0 + i, [&] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sched.cancel(ids[i]);
    sched.sleep_for(500.0);
  });
  sched.run();
  EXPECT_EQ(fired, 50);
}

TEST(DeviceStress, DeepStreamPipelinesAcrossDevices) {
  // 8 devices, each with a producer stream chained to a consumer stream via
  // events, 100 stages deep; total time must equal the critical path.
  Scheduler sched;
  constexpr int kDevices = 8;
  constexpr int kStages = 100;
  std::vector<std::unique_ptr<Device>> devices;
  for (int d = 0; d < kDevices; ++d) devices.push_back(std::make_unique<Device>(&sched, d, 0, d));
  sched.spawn("host", [&] {
    std::vector<Stream*> producers, consumers;
    for (auto& dev : devices) {
      producers.push_back(dev->create_stream("prod"));
      consumers.push_back(dev->create_stream("cons"));
    }
    for (int d = 0; d < kDevices; ++d) {
      for (int s = 0; s < kStages; ++s) {
        auto ev = std::make_shared<Event>(&sched);
        producers[static_cast<std::size_t>(d)]->launch_kernel(1.0);
        producers[static_cast<std::size_t>(d)]->record_event(ev);
        consumers[static_cast<std::size_t>(d)]->wait_event(ev);
        consumers[static_cast<std::size_t>(d)]->launch_kernel(1.0);
      }
    }
    for (Stream* s : consumers) s->synchronize();
    // Producer finishes at kStages; the last consumer kernel starts then.
    EXPECT_DOUBLE_EQ(sched.now(), kStages + 1.0);
  });
  sched.run();
}

TEST(DeviceStress, BusyTimeAccountsEveryKernel) {
  Scheduler sched;
  Device dev(&sched, 0, 0, 0);
  sched.spawn("host", [&] {
    Rng rng(3);
    double expected = 0.0;
    for (int i = 0; i < 200; ++i) {
      const double d = rng.uniform(0.1, 5.0);
      expected += d;
      dev.default_stream()->launch_kernel(d);
    }
    dev.default_stream()->synchronize();
    EXPECT_NEAR(dev.default_stream()->busy_time(), expected, 1e-9);
    EXPECT_NEAR(sched.now(), expected, 1e-9);
  });
  sched.run();
}

}  // namespace
}  // namespace mcrdl::sim
