// Execution-model seam tests: the same scheduler contract exercised under
// both engines (SerialBaton and ParallelShards). Covers the edge cases the
// refactor is most likely to disturb — cancel-after-fire, FIFO ordering of
// simultaneous timed events, stale wait-token rejection, and deadlock
// detection — plus the cross-time ordering guarantees both engines share.
//
// Under ParallelShards, actors that are runnable at the same virtual instant
// execute concurrently, so these tests only assert orderings across distinct
// virtual times (which both engines guarantee) and guard any state shared by
// same-instant actors with a mutex.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/scheduler.h"

namespace mcrdl::sim {
namespace {

class ExecutionModelTest : public ::testing::TestWithParam<ExecutionConfig> {
 protected:
  ExecutionConfig config() const { return GetParam(); }
};

std::string config_name(const ::testing::TestParamInfo<ExecutionConfig>& info) {
  return info.param.kind == ExecutionModelKind::SerialBaton
             ? "serial"
             : "parallel" + std::to_string(info.param.threads);
}

TEST_P(ExecutionModelTest, ActorsRunAndTimeAdvances) {
  Scheduler sched(config());
  std::atomic<int> ran{0};
  SimTime a_end = -1.0, b_end = -1.0;
  sched.spawn("a", [&] {
    sched.sleep_for(10.0);
    a_end = sched.now();
    ran.fetch_add(1);
  });
  sched.spawn("b", [&] {
    sched.sleep_for(25.0);
    b_end = sched.now();
    ran.fetch_add(1);
  });
  sched.run();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_DOUBLE_EQ(a_end, 10.0);
  EXPECT_DOUBLE_EQ(b_end, 25.0);
  EXPECT_DOUBLE_EQ(sched.now(), 25.0);
}

TEST_P(ExecutionModelTest, CrossTimeOrderingIsPreserved) {
  Scheduler sched(config());
  std::mutex mu;
  std::vector<std::string> trace;
  const auto push = [&](const std::string& s) {
    std::lock_guard<std::mutex> lock(mu);
    trace.push_back(s);
  };
  sched.spawn("a", [&] {
    sched.sleep_for(10.0);
    push("a@10");
    sched.sleep_for(20.0);
    push("a@30");
  });
  sched.spawn("b", [&] {
    sched.sleep_for(20.0);
    push("b@20");
  });
  sched.run();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "a@10");
  EXPECT_EQ(trace[1], "b@20");
  EXPECT_EQ(trace[2], "a@30");
}

TEST_P(ExecutionModelTest, SimultaneousTimedEventsFireFifo) {
  Scheduler sched(config());
  std::vector<int> order;  // events fire serialized in both engines
  sched.spawn("a", [&] {
    for (int i = 0; i < 5; ++i) {
      sched.schedule_at(50.0, [&order, i] { order.push_back(i); });
    }
    sched.sleep_until(60.0);
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(ExecutionModelTest, CancelAfterFireIsANoOp) {
  Scheduler sched(config());
  int fired = 0;
  std::uint64_t id = 0;
  sched.spawn("a", [&] {
    id = sched.schedule_at(5.0, [&] { ++fired; });
    sched.sleep_until(10.0);  // the event has fired by the time we wake
    sched.cancel(id);         // must not throw or un-fire it
    sched.cancel(id);         // double-cancel is also a no-op
    sched.sleep_until(20.0);
  });
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(ExecutionModelTest, CancelBeforeFireSuppressesTheEvent) {
  Scheduler sched(config());
  int fired = 0;
  sched.spawn("a", [&] {
    const std::uint64_t id = sched.schedule_at(100.0, [&] { ++fired; });
    sched.cancel(id);
    sched.sleep_until(200.0);
  });
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST_P(ExecutionModelTest, StaleWaitTokenIsRejected) {
  Scheduler sched(config());
  bool stale_result = true;
  bool fresh_result = false;
  sched.spawn("a", [&] {
    // First suspension: the timed event wakes it with a live token.
    Scheduler::WaitToken first = sched.prepare_wait();
    sched.schedule_at(10.0, [&sched, first, &fresh_result] {
      fresh_result = sched.try_wake(first, WakeReason::Normal);
    });
    sched.commit_wait();
    // `first` now identifies a completed suspension. A wake source still
    // holding it must be refused — otherwise it would corrupt the next wait.
    sched.schedule_at(20.0, [&sched, first, &stale_result] {
      stale_result = sched.try_wake(first, WakeReason::Normal);
    });
    sched.sleep_until(30.0);
  });
  sched.run();
  EXPECT_TRUE(fresh_result);
  EXPECT_FALSE(stale_result);
}

TEST_P(ExecutionModelTest, SecondWakeOnSameTokenIsRejected) {
  Scheduler sched(config());
  int accepted = 0;
  sched.spawn("a", [&] {
    Scheduler::WaitToken token = sched.prepare_wait();
    sched.schedule_at(10.0, [&sched, token, &accepted] {
      if (sched.try_wake(token, WakeReason::Normal)) ++accepted;
      if (sched.try_wake(token, WakeReason::Normal)) ++accepted;  // duplicate
    });
    sched.commit_wait();
  });
  sched.run();
  EXPECT_EQ(accepted, 1);
}

TEST_P(ExecutionModelTest, DeadlockIsDetectedAndNamesBlockedActors) {
  Scheduler sched(config());
  SimCondition never(&sched);
  std::atomic<int> deadlocked{0};
  for (const char* name : {"alpha", "beta"}) {
    sched.spawn(name, [&] {
      try {
        never.wait();
        ADD_FAILURE() << "wait returned without a wake";
      } catch (const DeadlockError& e) {
        deadlocked.fetch_add(1);
        EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("beta"), std::string::npos);
        throw;
      }
    });
  }
  EXPECT_THROW(sched.run(), DeadlockError);
  EXPECT_EQ(deadlocked.load(), 2);
}

TEST_P(ExecutionModelTest, DeadlockAfterProgressReportsCurrentTime) {
  Scheduler sched(config());
  SimCondition never(&sched);
  sched.spawn("worker", [&] {
    sched.sleep_for(42.0);
    never.wait();
  });
  try {
    sched.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("t=42"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos);
  }
  EXPECT_DOUBLE_EQ(sched.now(), 42.0);
}

TEST_P(ExecutionModelTest, ConditionWakesAllWaiters) {
  Scheduler sched(config());
  SimCondition cond(&sched);
  std::atomic<bool> go{false};
  std::atomic<int> woke{0};
  for (int i = 0; i < 4; ++i) {
    sched.spawn("w" + std::to_string(i), [&] {
      cond.wait([&] { return go.load(); });
      woke.fetch_add(1);
    });
  }
  sched.spawn("signaller", [&] {
    sched.sleep_for(15.0);
    go.store(true);
    cond.notify_all();
  });
  sched.run();
  EXPECT_EQ(woke.load(), 4);
}

TEST_P(ExecutionModelTest, ActorExceptionPropagatesFromRun) {
  Scheduler sched(config());
  sched.spawn("boom", [&] {
    sched.sleep_for(5.0);
    throw std::runtime_error("actor failed");
  });
  sched.spawn("bystander", [&] { sched.sleep_for(500.0); });
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST_P(ExecutionModelTest, IntrospectionReportsTheModel) {
  Scheduler sched(config());
  sched.spawn("a", [&] { sched.sleep_for(1.0); });
  sched.run();
  EXPECT_EQ(sched.execution_kind(), config().kind);
  if (config().kind == ExecutionModelKind::ParallelShards) {
    EXPECT_GE(sched.shard_count(), 1);
    EXPECT_LE(sched.shard_count(), config().threads);
    EXPECT_GE(sched.barrier_epochs(), 1u);  // the sleep forced a time advance
  } else {
    EXPECT_EQ(sched.shard_count(), 1);
    EXPECT_EQ(sched.barrier_epochs(), 0u);
  }
}

TEST_P(ExecutionModelTest, CurrentActorNameInsideAndOutside) {
  Scheduler sched(config());
  std::string inside;
  sched.spawn("the-actor", [&] { inside = sched.current_actor_name(); });
  sched.run();
  EXPECT_EQ(inside, "the-actor");
  EXPECT_EQ(sched.current_actor_name(), "");
  EXPECT_EQ(sched.current_actor_id(), -1);
}

TEST_P(ExecutionModelTest, ManyActorsManySleepsStress) {
  Scheduler sched(config());
  constexpr int kActors = 12;
  constexpr int kRounds = 40;
  std::atomic<int> done{0};
  for (int a = 0; a < kActors; ++a) {
    sched.spawn("s" + std::to_string(a), [&, a] {
      for (int r = 0; r < kRounds; ++r) sched.sleep_for(1.0 + (a % 3));
      done.fetch_add(1);
    });
  }
  sched.run();
  EXPECT_EQ(done.load(), kActors);
  EXPECT_DOUBLE_EQ(sched.now(), 3.0 * kRounds);  // slowest actor: 3us rounds
}

INSTANTIATE_TEST_SUITE_P(Engines, ExecutionModelTest,
                         ::testing::Values(ExecutionConfig::serial(),
                                           ExecutionConfig::parallel(2),
                                           ExecutionConfig::parallel(4)),
                         config_name);

}  // namespace
}  // namespace mcrdl::sim
