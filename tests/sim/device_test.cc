// Unit tests for the simulated device runtime: stream FIFO ordering, kernel
// timing, event record/wait semantics, gates, and host synchronisation.
#include "src/sim/device.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace mcrdl::sim {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  // Runs `body` as a single host actor against one device.
  void run_host(std::function<void(Device&)> body) {
    Device device(&sched_, /*global_id=*/0, /*node_id=*/0, /*local_id=*/0);
    sched_.spawn("host", [&] { body(device); });
    sched_.run();
  }

  Scheduler sched_;
};

TEST_F(DeviceTest, KernelsExecuteInOrderAndAccumulateTime) {
  run_host([&](Device& dev) {
    std::vector<SimTime> completions;
    Stream* s = dev.default_stream();
    s->launch_kernel(10.0, [&] { completions.push_back(sched_.now()); });
    s->launch_kernel(5.0, [&] { completions.push_back(sched_.now()); });
    s->launch_kernel(2.5, [&] { completions.push_back(sched_.now()); });
    s->synchronize();
    EXPECT_EQ(completions, (std::vector<SimTime>{10.0, 15.0, 17.5}));
    EXPECT_DOUBLE_EQ(s->busy_time(), 17.5);
    EXPECT_TRUE(s->idle());
  });
}

TEST_F(DeviceTest, SynchronizeBlocksUntilQuiescent) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    s->launch_kernel(100.0);
    EXPECT_FALSE(s->idle());
    EXPECT_DOUBLE_EQ(sched_.now(), 0.0);  // launch is asynchronous
    s->synchronize();
    EXPECT_DOUBLE_EQ(sched_.now(), 100.0);
  });
}

TEST_F(DeviceTest, IndependentStreamsOverlap) {
  run_host([&](Device& dev) {
    Stream* a = dev.create_stream("a");
    Stream* b = dev.create_stream("b");
    a->launch_kernel(50.0);
    b->launch_kernel(50.0);
    a->synchronize();
    b->synchronize();
    // Overlapped: total elapsed is 50, not 100.
    EXPECT_DOUBLE_EQ(sched_.now(), 50.0);
  });
}

TEST_F(DeviceTest, EventRecordsStreamPosition) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    auto ev = std::make_shared<Event>(&sched_);
    s->launch_kernel(30.0);
    s->record_event(ev);
    s->launch_kernel(70.0);
    EXPECT_FALSE(ev->complete());
    ev->synchronize();
    EXPECT_TRUE(ev->complete());
    EXPECT_DOUBLE_EQ(ev->completion_time(), 30.0);
    EXPECT_DOUBLE_EQ(sched_.now(), 30.0);  // host resumed before second kernel finished
    s->synchronize();
    EXPECT_DOUBLE_EQ(sched_.now(), 100.0);
  });
}

TEST_F(DeviceTest, StreamWaitEventOrdersAcrossStreams) {
  run_host([&](Device& dev) {
    Stream* producer = dev.create_stream("producer");
    Stream* consumer = dev.create_stream("consumer");
    auto ev = std::make_shared<Event>(&sched_);
    SimTime consumer_done = -1.0;

    producer->launch_kernel(40.0);
    producer->record_event(ev);
    consumer->wait_event(ev);
    consumer->launch_kernel(10.0, [&] { consumer_done = sched_.now(); });
    consumer->synchronize();
    EXPECT_DOUBLE_EQ(consumer_done, 50.0);  // waited for producer's 40, then ran 10
  });
}

TEST_F(DeviceTest, WaitOnAlreadyCompleteEventIsImmediate) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    auto ev = std::make_shared<Event>(&sched_);
    s->record_event(ev);
    s->synchronize();
    EXPECT_TRUE(ev->complete());
    s->wait_event(ev);
    s->launch_kernel(5.0);
    s->synchronize();
    EXPECT_DOUBLE_EQ(sched_.now(), 5.0);
  });
}

TEST_F(DeviceTest, EventResetAllowsReRecord) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    auto ev = std::make_shared<Event>(&sched_);
    s->launch_kernel(10.0);
    s->record_event(ev);
    s->synchronize();
    EXPECT_DOUBLE_EQ(ev->completion_time(), 10.0);
    ev->reset();
    EXPECT_FALSE(ev->complete());
    s->launch_kernel(10.0);
    s->record_event(ev);
    s->synchronize();
    EXPECT_DOUBLE_EQ(ev->completion_time(), 20.0);
  });
}

TEST_F(DeviceTest, GateStallsStreamUntilOpened) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    auto gate = std::make_shared<StreamGate>(&sched_);
    SimTime ran_at = -1.0;
    s->wait_gate(gate);
    s->launch_kernel(1.0, [&] { ran_at = sched_.now(); });
    sched_.schedule_after(25.0, [gate] { gate->open(); });
    s->synchronize();
    EXPECT_DOUBLE_EQ(ran_at, 26.0);
  });
}

TEST_F(DeviceTest, OpenGateDoesNotStall) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    auto gate = std::make_shared<StreamGate>(&sched_);
    gate->open();
    s->wait_gate(gate);
    s->launch_kernel(2.0);
    s->synchronize();
    EXPECT_DOUBLE_EQ(sched_.now(), 2.0);
  });
}

TEST_F(DeviceTest, CallbackRunsAtStreamPosition) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    SimTime cb_time = -1.0;
    s->launch_kernel(15.0);
    s->add_callback([&] { cb_time = sched_.now(); });
    s->synchronize();
    EXPECT_DOUBLE_EQ(cb_time, 15.0);
  });
}

TEST_F(DeviceTest, CallbackMayEnqueueFurtherWork) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    SimTime second_done = -1.0;
    s->add_callback([&] { s->launch_kernel(7.0, [&] { second_done = sched_.now(); }); });
    s->synchronize();
    EXPECT_DOUBLE_EQ(second_done, 7.0);
  });
}

TEST_F(DeviceTest, ZeroDurationKernelCompletes) {
  run_host([&](Device& dev) {
    Stream* s = dev.default_stream();
    bool ran = false;
    s->launch_kernel(0.0, [&] { ran = true; });
    s->synchronize();
    EXPECT_TRUE(ran);
    EXPECT_DOUBLE_EQ(sched_.now(), 0.0);
  });
}

TEST_F(DeviceTest, NegativeDurationRejected) {
  run_host([&](Device& dev) {
    EXPECT_THROW(dev.default_stream()->launch_kernel(-1.0), InvalidArgument);
  });
}

TEST_F(DeviceTest, DeviceIdentityFields) {
  Scheduler sched;
  Device dev(&sched, 13, 3, 1);
  EXPECT_EQ(dev.global_id(), 13);
  EXPECT_EQ(dev.node_id(), 3);
  EXPECT_EQ(dev.local_id(), 1);
  EXPECT_NE(dev.default_stream(), nullptr);
}

TEST_F(DeviceTest, TwoHostActorsShareOneDeviceViaEvents) {
  // Producer actor launches work and records an event; consumer actor waits
  // on it from the host side — the cross-actor analogue of Listing 3.
  Device device(&sched_, 0, 0, 0);
  auto ev = std::make_shared<Event>(&sched_);
  SimTime consumer_resumed = -1.0;
  sched_.spawn("producer", [&] {
    device.default_stream()->launch_kernel(60.0);
    device.default_stream()->record_event(ev);
  });
  sched_.spawn("consumer", [&] {
    ev->synchronize();
    consumer_resumed = sched_.now();
  });
  sched_.run();
  EXPECT_DOUBLE_EQ(consumer_resumed, 60.0);
}

}  // namespace
}  // namespace mcrdl::sim
