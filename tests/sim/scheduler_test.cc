// Unit tests for the virtual-time cooperative scheduler: determinism,
// time advancement, conditions, timed events, deadlock detection, and error
// propagation.
#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace mcrdl::sim {
namespace {

TEST(Scheduler, SingleActorRunsToCompletion) {
  Scheduler sched;
  bool ran = false;
  sched.spawn("a", [&] { ran = true; });
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
}

TEST(Scheduler, SleepAdvancesVirtualTime) {
  Scheduler sched;
  SimTime observed = -1.0;
  sched.spawn("a", [&] {
    sched.sleep_for(125.0);
    observed = sched.now();
  });
  sched.run();
  EXPECT_DOUBLE_EQ(observed, 125.0);
}

TEST(Scheduler, SleepUntilPastIsNoOpInTime) {
  Scheduler sched;
  sched.spawn("a", [&] {
    sched.sleep_for(50.0);
    sched.sleep_until(10.0);  // in the past: fires immediately, no travel back
    EXPECT_DOUBLE_EQ(sched.now(), 50.0);
  });
  sched.run();
}

TEST(Scheduler, TwoActorsInterleaveDeterministically) {
  Scheduler sched;
  std::vector<std::string> trace;
  sched.spawn("a", [&] {
    trace.push_back("a0");
    sched.sleep_for(10.0);
    trace.push_back("a1");
    sched.sleep_for(20.0);  // wakes at t=30
    trace.push_back("a2");
  });
  sched.spawn("b", [&] {
    trace.push_back("b0");
    sched.sleep_for(20.0);
    trace.push_back("b1");
    sched.sleep_for(5.0);  // wakes at t=25
    trace.push_back("b2");
  });
  sched.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "a1", "b1", "b2", "a2"}));
  EXPECT_DOUBLE_EQ(sched.now(), 30.0);
}

TEST(Scheduler, YieldLetsPeersRunFirst) {
  Scheduler sched;
  std::vector<int> order;
  sched.spawn("a", [&] {
    order.push_back(1);
    sched.yield();
    order.push_back(3);
  });
  sched.spawn("b", [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, ConditionWakesWaiter) {
  Scheduler sched;
  SimCondition cond(&sched);
  bool flag = false;
  SimTime woke_at = -1.0;
  sched.spawn("waiter", [&] {
    cond.wait([&] { return flag; });
    woke_at = sched.now();
  });
  sched.spawn("signaller", [&] {
    sched.sleep_for(42.0);
    flag = true;
    cond.notify_all();
  });
  sched.run();
  EXPECT_DOUBLE_EQ(woke_at, 42.0);
}

TEST(Scheduler, ConditionNotifyAllWakesAllWaiters) {
  Scheduler sched;
  SimCondition cond(&sched);
  bool flag = false;
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    sched.spawn("w" + std::to_string(i), [&] {
      cond.wait([&] { return flag; });
      ++woke;
    });
  }
  sched.spawn("signaller", [&] {
    sched.sleep_for(1.0);
    flag = true;
    cond.notify_all();
  });
  sched.run();
  EXPECT_EQ(woke, 5);
}

TEST(Scheduler, TimedEventFiresAtScheduledTime) {
  Scheduler sched;
  SimTime fired_at = -1.0;
  sched.spawn("a", [&] {
    sched.schedule_after(7.5, [&] { fired_at = sched.now(); });
    sched.sleep_for(100.0);
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, CancelledEventDoesNotFire) {
  Scheduler sched;
  bool fired = false;
  sched.spawn("a", [&] {
    auto id = sched.schedule_after(5.0, [&] { fired = true; });
    sched.cancel(id);
    sched.sleep_for(10.0);
  });
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, EventsFireInTimeOrderWithFifoTieBreak) {
  Scheduler sched;
  std::vector<int> order;
  sched.spawn("a", [&] {
    sched.schedule_after(5.0, [&] { order.push_back(2); });
    sched.schedule_after(5.0, [&] { order.push_back(3); });
    sched.schedule_after(1.0, [&] { order.push_back(1); });
    sched.sleep_for(10.0);
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, DeadlockDetectedWhenAllActorsBlockForever) {
  Scheduler sched;
  SimCondition never(&sched);
  sched.spawn("a", [&] { never.wait(); });
  sched.spawn("b", [&] { never.wait(); });
  EXPECT_THROW(sched.run(), DeadlockError);
}

TEST(Scheduler, DeadlockAfterOneActorExits) {
  Scheduler sched;
  SimCondition never(&sched);
  sched.spawn("a", [&] { never.wait(); });
  sched.spawn("b", [&] { /* exits immediately, leaving a stuck */ });
  EXPECT_THROW(sched.run(), DeadlockError);
}

TEST(Scheduler, DeadlockMessageNamesBlockedActors) {
  Scheduler sched;
  SimCondition never(&sched);
  sched.spawn("stuck_rank", [&] { never.wait(); });
  try {
    sched.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck_rank"), std::string::npos);
  }
}

TEST(Scheduler, ActorExceptionPropagatesAndUnblocksPeers) {
  Scheduler sched;
  SimCondition never(&sched);
  sched.spawn("waiter", [&] { never.wait(); });
  sched.spawn("thrower", [&] {
    sched.sleep_for(1.0);
    throw InvalidArgument("boom");
  });
  EXPECT_THROW(sched.run(), InvalidArgument);
}

TEST(Scheduler, FirstErrorWinsWhenMultipleActorsThrow) {
  Scheduler sched;
  sched.spawn("a", [&] {
    sched.sleep_for(1.0);
    throw InvalidArgument("first");
  });
  sched.spawn("b", [&] {
    sched.sleep_for(2.0);
    throw BackendStateError("second");
  });
  try {
    sched.run();
    FAIL() << "expected exception";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
}

TEST(Scheduler, ManyActorsBarrierStyleRendezvous) {
  // A hand-rolled barrier across 32 actors exercises the condition + wake
  // machinery under fan-in/fan-out.
  constexpr int kN = 32;
  Scheduler sched;
  SimCondition cond(&sched);
  int arrived = 0;
  int released = 0;
  for (int i = 0; i < kN; ++i) {
    sched.spawn("r" + std::to_string(i), [&, i] {
      sched.sleep_for(static_cast<SimTime>(i));  // staggered arrivals
      ++arrived;
      cond.notify_all();
      cond.wait([&] { return arrived == kN; });
      ++released;
    });
  }
  sched.run();
  EXPECT_EQ(released, kN);
  EXPECT_DOUBLE_EQ(sched.now(), kN - 1);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scheduler sched;
    std::vector<int> trace;
    SimCondition cond(&sched);
    int token = 0;
    for (int i = 0; i < 8; ++i) {
      sched.spawn("p" + std::to_string(i), [&, i] {
        for (int step = 0; step < 4; ++step) {
          cond.wait([&] { return token % 8 == i; });
          trace.push_back(i * 100 + step);
          ++token;
          cond.notify_all();
        }
      });
    }
    sched.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, CurrentActorNameVisibleInsideActor) {
  Scheduler sched;
  std::string seen;
  sched.spawn("rank7", [&] { seen = sched.current_actor_name(); });
  sched.run();
  EXPECT_EQ(seen, "rank7");
  EXPECT_EQ(sched.current_actor_name(), "");
}

TEST(Scheduler, SpawnAfterRunStartsIsRejected) {
  Scheduler sched;
  sched.spawn("a", [&] {
    EXPECT_THROW(sched.spawn("late", [] {}), Error);
  });
  sched.run();
}

TEST(Scheduler, RunWithoutActorsIsRejected) {
  Scheduler sched;
  EXPECT_THROW(sched.run(), Error);
}

TEST(Scheduler, EventCallbackCanScheduleMoreEvents) {
  Scheduler sched;
  std::vector<SimTime> fires;
  sched.spawn("a", [&] {
    std::function<void()> chain = [&] {
      fires.push_back(sched.now());
      if (fires.size() < 4) sched.schedule_after(10.0, chain);
    };
    sched.schedule_after(10.0, chain);
    sched.sleep_for(100.0);
  });
  sched.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{10.0, 20.0, 30.0, 40.0}));
}

}  // namespace
}  // namespace mcrdl::sim
