// Point-to-point semantics: FIFO tag matching, out-of-order posting, many
// outstanding messages, ring pipelines, eager-vs-rendezvous costs, and the
// gloo extensibility backend.
#include <gtest/gtest.h>

#include <memory>

#include "src/backends/backend.h"

namespace mcrdl {
namespace {

class P2pSemanticsTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(2));  // 8 ranks
    backend_ = make_backend(GetParam(), cluster_.get());
    backend_->init();
  }
  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<Backend> backend_;
};

TEST_P(P2pSemanticsTest, RecvBeforeSendMatches) {
  cluster_->run_spmd(2, [&](int rank) {
    if (rank == 1) {
      Tensor t = Tensor::zeros({4}, DType::F32, cluster_->device(rank));
      Work w = backend_->world()->recv(rank, t, 0, true);  // posted first
      w->synchronize();
      EXPECT_DOUBLE_EQ(t.get(3), 3.0);
    } else {
      cluster_->scheduler().sleep_for(50.0);  // send arrives later
      Tensor t = Tensor::arange(4, DType::F32, cluster_->device(rank));
      backend_->world()->send(rank, t, 1, false);
      backend_->synchronize(rank);
    }
  });
}

TEST_P(P2pSemanticsTest, FifoMatchingPreservesMessageOrder) {
  cluster_->run_spmd(2, [&](int rank) {
    if (rank == 0) {
      for (int i = 0; i < 4; ++i) {
        Tensor t = Tensor::full({1}, DType::F32, 100.0 + i, cluster_->device(rank));
        backend_->world()->send(rank, t, 1, true);
      }
      backend_->synchronize(rank);
    } else {
      std::vector<Tensor> rx;
      std::vector<Work> works;
      for (int i = 0; i < 4; ++i) {
        rx.push_back(Tensor::zeros({1}, DType::F32, cluster_->device(rank)));
        works.push_back(backend_->world()->recv(rank, rx.back(), 0, true));
      }
      for (auto& w : works) w->synchronize();
      for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(rx[static_cast<std::size_t>(i)].get(0), 100.0 + i) << "message " << i;
      }
    }
  });
}

TEST_P(P2pSemanticsTest, RingPipeline) {
  // Every rank sends its value around the ring world_size-1 times; each
  // ends up having seen everyone's contribution (an allgather by hand).
  const int n = 8;
  cluster_->run_spmd([&](int rank) {
    Comm* comm = backend_->world();
    double have = rank * 1.0;
    double sum = have;
    for (int step = 0; step < n - 1; ++step) {
      Tensor tx = Tensor::full({1}, DType::F64, have, cluster_->device(rank));
      Tensor rx = Tensor::zeros({1}, DType::F64, cluster_->device(rank));
      Work ws = comm->send(rank, tx, (rank + 1) % n, true);
      Work wr = comm->recv(rank, rx, (rank + n - 1) % n, true);
      ws->synchronize();
      wr->synchronize();
      have = rx.get(0);
      sum += have;
    }
    EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0);
  });
}

TEST_P(P2pSemanticsTest, InterNodeSlowerThanIntraNode) {
  SimTime intra = 0.0, inter = 0.0;
  cluster_->run_spmd([&](int rank) {
    Comm* comm = backend_->world();
    Tensor payload = Tensor::phantom({1 << 18}, DType::F32, cluster_->device(rank));  // 1 MiB
    // ranks 0<->1 same node; then 0<->4 across nodes.
    if (rank == 0) {
      SimTime t0 = cluster_->scheduler().now();
      comm->send(rank, payload, 1, false);
      backend_->synchronize(rank);
      intra = cluster_->scheduler().now() - t0;
      t0 = cluster_->scheduler().now();
      comm->send(rank, payload, 4, false);
      backend_->synchronize(rank);
      inter = cluster_->scheduler().now() - t0;
    } else if (rank == 1) {
      comm->recv(rank, payload, 0, false);
    } else if (rank == 4) {
      comm->recv(rank, payload, 0, false);
    }
  });
  EXPECT_GT(inter, intra);
}

TEST_P(P2pSemanticsTest, SelfSendRejected) {
  cluster_->run_spmd(1, [&](int rank) {
    Tensor t = Tensor::zeros({1}, DType::F32, cluster_->device(rank));
    EXPECT_THROW(backend_->world()->send(rank, t, 0, true), InvalidArgument);
    EXPECT_THROW(backend_->world()->recv(rank, t, 0, true), InvalidArgument);
  });
}

TEST_P(P2pSemanticsTest, UnmatchedRecvDeadlocksOnHostWait) {
  EXPECT_THROW(cluster_->run_spmd(2, [&](int rank) {
                 if (rank == 1) {
                   Tensor t = Tensor::zeros({1}, DType::F32, cluster_->device(rank));
                   backend_->world()->recv(rank, t, 0, true);  // no one sends
                   backend_->synchronize(rank);                // host-level wait
                 }
               }),
               DeadlockError);
}

INSTANTIATE_TEST_SUITE_P(Backends, P2pSemanticsTest,
                         ::testing::Values("nccl", "mv2-gdr", "gloo"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(P2pCosts, RendezvousAddsLatencyAboveEagerThreshold) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  auto mpi = make_backend("mv2-gdr", &cluster);
  mpi->init();
  const std::size_t eager = mpi->profile().eager_threshold;
  SimTime small_t = 0.0, large_t = 0.0;
  cluster.run_spmd(2, [&](int rank) {
    auto roundtrip = [&](std::size_t bytes) {
      Tensor t = Tensor::phantom({static_cast<std::int64_t>(bytes)}, DType::U8,
                                 cluster.device(rank));
      SimTime t0 = cluster.scheduler().now();
      if (rank == 0) {
        mpi->world()->send(rank, t, 1, false);
      } else {
        mpi->world()->recv(rank, t, 0, false);
      }
      mpi->synchronize(rank);
      return cluster.scheduler().now() - t0;
    };
    const SimTime s = roundtrip(eager);
    const SimTime l = roundtrip(eager + 64);
    if (rank == 0) {
      small_t = s;
      large_t = l;
    }
  });
  EXPECT_GT(large_t - small_t, mpi->profile().rendezvous_overhead_us * 0.5);
}

TEST(GlooBackend, ExtensibilityDemoWorksButIsSlow) {
  // The Gloo-style backend exists purely to show a new backend is one
  // profile + one factory line (paper Section V-B). It must be correct —
  // and clearly slower than the GPU-aware libraries.
  ClusterContext cluster(net::SystemConfig::lassen(2));
  auto gloo = make_backend("gloo", &cluster);
  auto nccl = make_backend("nccl", &cluster);
  gloo->init();
  nccl->init();
  EXPECT_EQ(gloo->display_name(), "Gloo");
  EXPECT_TRUE(gloo->profile().supports_all_ops);
  SimTime gloo_t = 0.0, nccl_t = 0.0;
  cluster.run_spmd([&](int rank) {
    Tensor a = Tensor::full({1 << 20}, DType::F32, 1.0, cluster.device(rank));
    SimTime t0 = cluster.scheduler().now();
    gloo->world()->all_reduce(rank, a, ReduceOp::Sum, false);
    gloo->synchronize(rank);
    if (rank == 0) gloo_t = cluster.scheduler().now() - t0;
    EXPECT_DOUBLE_EQ(a.get(0), 8.0);
    Tensor b = Tensor::full({1 << 20}, DType::F32, 1.0, cluster.device(rank));
    t0 = cluster.scheduler().now();
    nccl->world()->all_reduce(rank, b, ReduceOp::Sum, false);
    nccl->synchronize(rank);
    if (rank == 0) nccl_t = cluster.scheduler().now() - t0;
  });
  EXPECT_GT(gloo_t, 2.0 * nccl_t);
}

}  // namespace
}  // namespace mcrdl
