// Differential / property testing of the full backend stack: long random
// programs of collectives are executed through the runtime and checked
// against closed-form expected results computed independently in the test.
// Catches rendezvous sequencing, slot-mixing, and view-aliasing bugs that
// single-op tests cannot.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

// One randomly chosen collective whose result is computable in closed form
// from (op index, rank, world, payload seed).
struct RandomOp {
  enum Kind { AllReduceSum, AllReduceMax, Broadcast, AllGather, AllToAllSingle, ReduceScatter };
  Kind kind;
  int root;            // for Broadcast
  std::int64_t numel;  // per-rank payload elements
  double seed;         // base value
};

RandomOp draw(Rng& rng, int world) {
  RandomOp op;
  op.kind = static_cast<RandomOp::Kind>(rng.next_below(6));
  op.root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(world)));
  op.numel = static_cast<std::int64_t>(world) * (1 + static_cast<std::int64_t>(rng.next_below(8)));
  op.seed = 1.0 + static_cast<double>(rng.next_below(100));
  return op;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, RandomProgramMatchesClosedForm) {
  const std::uint64_t seed = GetParam();
  ClusterContext cluster(net::SystemConfig::lassen(2));  // 8 ranks
  const int world = cluster.world_size();
  McrDl mcr(&cluster);
  mcr.init({"nccl", "mv2-gdr"});

  // Pre-draw the program so all ranks agree on it.
  Rng rng(seed);
  std::vector<RandomOp> program;
  for (int i = 0; i < 40; ++i) program.push_back(draw(rng, world));

  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    Rng backend_pick(seed ^ 0xabcdef);
    for (std::size_t i = 0; i < program.size(); ++i) {
      const RandomOp& op = program[i];
      // Alternate backends pseudo-randomly but consistently across ranks.
      const std::string backend = backend_pick.next_below(2) == 0 ? "nccl" : "mv2-gdr";
      const double base = op.seed;
      switch (op.kind) {
        case RandomOp::AllReduceSum: {
          // rank contributes base + rank; sum = world*base + world(world-1)/2.
          Tensor t = Tensor::full({op.numel}, DType::F64, base + rank, dev);
          api.all_reduce(backend, t, ReduceOp::Sum);
          api.synchronize();
          const double expect = world * base + world * (world - 1) / 2.0;
          ASSERT_DOUBLE_EQ(t.get(0), expect) << "op " << i;
          ASSERT_DOUBLE_EQ(t.get(op.numel - 1), expect) << "op " << i;
          break;
        }
        case RandomOp::AllReduceMax: {
          Tensor t = Tensor::full({op.numel}, DType::F64, base + rank, dev);
          api.all_reduce(backend, t, ReduceOp::Max);
          api.synchronize();
          ASSERT_DOUBLE_EQ(t.get(0), base + world - 1) << "op " << i;
          break;
        }
        case RandomOp::Broadcast: {
          Tensor t = Tensor::full({op.numel}, DType::F64,
                                  rank == op.root ? base : -1.0, dev);
          api.broadcast(backend, t, op.root);
          api.synchronize();
          ASSERT_DOUBLE_EQ(t.get(op.numel / 2), base) << "op " << i;
          break;
        }
        case RandomOp::AllGather: {
          Tensor in = Tensor::full({op.numel}, DType::F64, base + rank, dev);
          Tensor out = Tensor::zeros({op.numel * world}, DType::F64, dev);
          api.all_gather(backend, out, in);
          api.synchronize();
          for (int r = 0; r < world; ++r) {
            ASSERT_DOUBLE_EQ(out.get(r * op.numel), base + r) << "op " << i;
          }
          break;
        }
        case RandomOp::AllToAllSingle: {
          const std::int64_t block = op.numel / world;
          Tensor in = Tensor::zeros({op.numel}, DType::F64, dev);
          for (int d = 0; d < world; ++d) {
            for (std::int64_t k = 0; k < block; ++k) in.set(d * block + k, base + rank * 100 + d);
          }
          Tensor out = Tensor::zeros({op.numel}, DType::F64, dev);
          api.all_to_all_single(backend, out, in);
          api.synchronize();
          for (int s = 0; s < world; ++s) {
            ASSERT_DOUBLE_EQ(out.get(s * block), base + s * 100 + rank) << "op " << i;
          }
          break;
        }
        case RandomOp::ReduceScatter: {
          const std::int64_t block = op.numel / world;
          // Every rank contributes arange; each output block sums to
          // world * value.
          Tensor in = Tensor::arange(op.numel, DType::F64, dev);
          Tensor out = Tensor::zeros({block}, DType::F64, dev);
          api.reduce_scatter(backend, out, in, ReduceOp::Sum);
          api.synchronize();
          ASSERT_DOUBLE_EQ(out.get(0), static_cast<double>(world) * (rank * block)) << "op " << i;
          break;
        }
      }
    }
    api.synchronize();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u, 99999u));

TEST(DifferentialTest2, SameSeedSameVirtualTrace) {
  auto run = [](std::uint64_t seed) {
    ClusterContext cluster(net::SystemConfig::lassen(2));
    McrDl mcr(&cluster);
    mcr.init({"nccl", "mv2-gdr"});
    Rng rng(seed);
    std::vector<RandomOp> program;
    for (int i = 0; i < 20; ++i) program.push_back(draw(rng, cluster.world_size()));
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      for (const auto& op : program) {
        Tensor t = Tensor::full({op.numel}, DType::F64, op.seed, cluster.device(rank));
        api.all_reduce(op.kind % 2 == 0 ? "nccl" : "mv2-gdr", t, ReduceOp::Sum,
                       /*async_op=*/true);
      }
      api.synchronize();
    });
    return cluster.scheduler().now();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different programs take different time
}

}  // namespace
}  // namespace mcrdl
