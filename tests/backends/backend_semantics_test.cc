// Semantics of the backend layer beyond data correctness: stream- vs
// host-synchronised completion disciplines, overlap behaviour, misuse
// detection, lifecycle errors, groups, and the deadlock scenarios from
// paper Section V-D.
#include <gtest/gtest.h>

#include <memory>

#include "src/backends/backend.h"

namespace mcrdl {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  void make_cluster(int nodes = 2) {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(nodes));
  }
  Backend* add(const std::string& name) {
    backends_.push_back(make_backend(name, cluster_.get()));
    backends_.back()->init();
    return backends_.back().get();
  }

  std::unique_ptr<ClusterContext> cluster_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

TEST_F(SemanticsTest, StreamBackendWaitDoesNotBlockHost) {
  make_cluster();
  Backend* nccl = add("nccl");
  cluster_->run_spmd([&](int rank) {
    Tensor t = Tensor::full({1024}, DType::F32, 1.0, cluster_->device(rank));
    Work w = nccl->world()->all_reduce(rank, t, ReduceOp::Sum, true);
    w->wait();  // stream-level dependency only
    // Host continues at the same virtual instant — the hallmark of the
    // fine-grained event scheme in Fig 4(b).
    EXPECT_DOUBLE_EQ(cluster_->scheduler().now(), 0.0);
    w->synchronize();  // host-level wait does advance time
    EXPECT_GT(cluster_->scheduler().now(), 0.0);
  });
}

TEST_F(SemanticsTest, HostBackendBlockingCallBlocksHost) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  cluster_->run_spmd([&](int rank) {
    Tensor t = Tensor::full({1024}, DType::F32, 1.0, cluster_->device(rank));
    mpi->world()->all_reduce(rank, t, ReduceOp::Sum, /*async_op=*/false);
    EXPECT_GT(cluster_->scheduler().now(), 0.0);  // MPI_Allreduce blocked us
  });
}

TEST_F(SemanticsTest, HostBackendAsyncLikeIallreduce) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  cluster_->run_spmd([&](int rank) {
    Tensor t = Tensor::full({1024}, DType::F32, 1.0, cluster_->device(rank));
    Work w = mpi->world()->all_reduce(rank, t, ReduceOp::Sum, /*async_op=*/true);
    EXPECT_DOUBLE_EQ(cluster_->scheduler().now(), 0.0);  // posting is free
    EXPECT_FALSE(w->test());
    w->wait();  // MPI_Wait
    EXPECT_TRUE(w->test());
    EXPECT_GT(cluster_->scheduler().now(), 0.0);
  });
}

TEST_F(SemanticsTest, CommunicationOverlapsDefaultStreamCompute) {
  // Listing 3: allreduce(x) on the comm stream overlaps y = y + y on the
  // default stream; total time ~= max(comm, compute), not the sum.
  make_cluster();
  Backend* nccl = add("nccl");
  SimTime serial_estimate = 0.0;
  {
    // Measure the collective alone first (separate cluster, same shape).
    ClusterContext probe(net::SystemConfig::lassen(2));
    auto b = make_backend("nccl", &probe);
    b->init();
    probe.run_spmd([&](int rank) {
      Tensor t = Tensor::full({1 << 18}, DType::F32, 1.0, probe.device(rank));
      b->world()->all_reduce(rank, t, ReduceOp::Sum, false);
      b->synchronize(rank);
      if (rank == 0) serial_estimate = probe.scheduler().now();
    });
  }
  cluster_->run_spmd([&](int rank) {
    Tensor x = Tensor::full({1 << 18}, DType::F32, 1.0, cluster_->device(rank));
    Work h = nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true);
    // Independent compute on the default stream, as long as the collective.
    cluster_->device(rank)->compute(serial_estimate);
    h->wait();
    cluster_->device(rank)->default_stream()->synchronize();
    // Overlapped: total well under comm + compute.
    EXPECT_LT(cluster_->scheduler().now(), 1.7 * serial_estimate);
    EXPECT_GE(cluster_->scheduler().now(), serial_estimate * 0.99);
  });
}

TEST_F(SemanticsTest, SmallMessagesUseStreamPoolConcurrently) {
  make_cluster();
  auto* nccl = dynamic_cast<StreamBackend*>(add("nccl"));
  ASSERT_NE(nccl, nullptr);
  // Small messages round-robin across the pool...
  sim::Stream* s0 = nccl->comm_stream(0, 1024);
  sim::Stream* s1 = nccl->comm_stream(0, 1024);
  EXPECT_NE(s0, s1);
  // ...large messages serialise on stream 0 (bandwidth-bound; Section V-C).
  sim::Stream* big0 = nccl->comm_stream(0, 10 << 20);
  sim::Stream* big1 = nccl->comm_stream(0, 10 << 20);
  EXPECT_EQ(big0, big1);
}

TEST_F(SemanticsTest, MismatchedCollectivesAreDetected) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  EXPECT_THROW(cluster_->run_spmd([&](int rank) {
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
                 if (rank == 0) {
                   mpi->world()->all_reduce(rank, t, ReduceOp::Sum, false);
                 } else {
                   mpi->world()->broadcast(rank, t, 0, false);
                 }
               }),
               CollectiveMismatch);
}

TEST_F(SemanticsTest, MissingParticipantDeadlocks) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  EXPECT_THROW(cluster_->run_spmd([&](int rank) {
                 if (rank == 0) return;  // rank 0 never joins
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
                 mpi->world()->all_reduce(rank, t, ReduceOp::Sum, false);
               }),
               DeadlockError);
}

TEST_F(SemanticsTest, NaiveMixedBackendOrderDivergenceDeadlocks) {
  // Paper Section V-D: rank 0 host-synchronises its NCCL collective before
  // entering MPI; rank 1 enters MPI first. Rank 0 waits for rank 1's NCCL
  // arrival while rank 1 waits for rank 0's MPI arrival — a circular wait
  // the virtual-time scheduler proves as a deadlock.
  make_cluster(1);  // 4 ranks on one node
  Backend* nccl = add("nccl");
  Backend* mpi = add("mv2-gdr");
  EXPECT_THROW(cluster_->run_spmd([&](int rank) {
                 Tensor x = Tensor::full({256}, DType::F32, 1.0, cluster_->device(rank));
                 Tensor y = Tensor::full({256}, DType::F32, 2.0, cluster_->device(rank));
                 if (rank == 0) {
                   Work h = nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true);
                   h->synchronize();  // naive: cudaStreamSynchronize before MPI
                   mpi->world()->all_reduce(rank, y, ReduceOp::Sum, false);
                 } else {
                   mpi->world()->all_reduce(rank, y, ReduceOp::Sum, false);
                   Work h = nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true);
                   h->synchronize();
                 }
               }),
               DeadlockError);
}

TEST_F(SemanticsTest, PostThenWaitMixedBackendsIsDeadlockFree) {
  // The MCR-DL discipline (Listing 4): post both backends' operations
  // asynchronously, then wait — the same divergent order now completes.
  make_cluster(1);
  Backend* nccl = add("nccl");
  Backend* mpi = add("mv2-gdr");
  cluster_->run_spmd([&](int rank) {
    Tensor x = Tensor::full({256}, DType::F32, 1.0, cluster_->device(rank));
    Tensor y = Tensor::full({256}, DType::F32, 2.0, cluster_->device(rank));
    Work h1, h2;
    if (rank == 0) {
      h1 = nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true);
      h2 = mpi->world()->all_reduce(rank, y, ReduceOp::Sum, true);
    } else {
      h2 = mpi->world()->all_reduce(rank, y, ReduceOp::Sum, true);
      h1 = nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true);
    }
    h1->synchronize();
    h2->synchronize();
    EXPECT_DOUBLE_EQ(x.get(0), 4.0);
    EXPECT_DOUBLE_EQ(y.get(0), 8.0);
  });
}

TEST_F(SemanticsTest, UninitializedBackendRejectsOps) {
  make_cluster();
  backends_.push_back(make_backend("nccl", cluster_.get()));
  Backend* nccl = backends_.back().get();
  cluster_->run_spmd(1, [&](int rank) {
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    EXPECT_THROW(nccl->world()->all_reduce(rank, t, ReduceOp::Sum, true), BackendStateError);
  });
}

TEST_F(SemanticsTest, FinalizeThenUseRejected) {
  make_cluster();
  Backend* nccl = add("nccl");
  nccl->finalize();
  cluster_->run_spmd(1, [&](int rank) {
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    EXPECT_THROW(nccl->world()->all_reduce(rank, t, ReduceOp::Sum, true), BackendStateError);
  });
}

TEST_F(SemanticsTest, DoubleInitRejected) {
  make_cluster();
  Backend* nccl = add("nccl");
  EXPECT_THROW(nccl->init(), Error);
}

TEST_F(SemanticsTest, SubGroupCollectivesAreIndependent) {
  make_cluster();  // 8 ranks
  Backend* mpi = add("mv2-gdr");
  Comm* low = mpi->group({0, 1, 2, 3});
  Comm* high = mpi->group({4, 5, 6, 7});
  cluster_->run_spmd([&](int rank) {
    Comm* mine = rank < 4 ? low : high;
    Tensor t = Tensor::full({2}, DType::F32, rank < 4 ? 1.0 : 10.0, cluster_->device(rank));
    mine->all_reduce(rank, t, ReduceOp::Sum, false);
    EXPECT_DOUBLE_EQ(t.get(0), rank < 4 ? 4.0 : 40.0);
  });
}

TEST_F(SemanticsTest, GroupRankMapping) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  Comm* odd = mpi->group({1, 3, 5, 7});
  EXPECT_EQ(odd->size(), 4);
  EXPECT_EQ(odd->group_rank(1), 0);
  EXPECT_EQ(odd->group_rank(7), 3);
  EXPECT_TRUE(odd->contains(3));
  EXPECT_FALSE(odd->contains(0));
  EXPECT_THROW(odd->group_rank(0), InvalidArgument);
}

TEST_F(SemanticsTest, GroupsAreCached) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  EXPECT_EQ(mpi->group({0, 1}), mpi->group({0, 1}));
  EXPECT_NE(mpi->group({0, 1}), mpi->group({0, 2}));
}

TEST_F(SemanticsTest, DuplicateRanksInGroupRejected) {
  make_cluster();
  Backend* mpi = add("mv2-gdr");
  EXPECT_THROW(mpi->group({0, 0, 1}), InvalidArgument);
}

TEST_F(SemanticsTest, LargerCollectivesTakeLongerInVirtualTime) {
  make_cluster();
  Backend* nccl = add("nccl");
  SimTime small_time = 0.0, large_time = 0.0;
  cluster_->run_spmd([&](int rank) {
    Tensor small = Tensor::phantom({1 << 10}, DType::F32, cluster_->device(rank));
    Tensor large = Tensor::phantom({1 << 22}, DType::F32, cluster_->device(rank));
    Work ws = nccl->world()->all_reduce(rank, small, ReduceOp::Sum, true);
    ws->synchronize();
    if (rank == 0) small_time = cluster_->scheduler().now();
    Work wl = nccl->world()->all_reduce(rank, large, ReduceOp::Sum, true);
    wl->synchronize();
    if (rank == 0) large_time = cluster_->scheduler().now() - small_time;
  });
  EXPECT_GT(large_time, small_time);
}

TEST_F(SemanticsTest, SynchronizeDrainsAllOutstandingWork) {
  make_cluster();
  Backend* nccl = add("nccl");
  cluster_->run_spmd([&](int rank) {
    std::vector<Tensor> tensors;
    for (int i = 0; i < 5; ++i) {
      tensors.push_back(Tensor::full({64}, DType::F32, 1.0, cluster_->device(rank)));
      nccl->world()->all_reduce(rank, tensors.back(), ReduceOp::Sum, true);
    }
    nccl->synchronize(rank);
    for (auto& t : tensors) EXPECT_DOUBLE_EQ(t.get(0), 8.0);
  });
}

TEST_F(SemanticsTest, UnknownBackendNameRejected) {
  make_cluster();
  EXPECT_THROW(make_backend("ucx", cluster_.get()), InvalidArgument);
  // The paper's four evaluated backends, plus the gloo extensibility demo.
  EXPECT_EQ(available_backend_names().size(), 4u);
  EXPECT_NE(make_backend("gloo", cluster_.get()), nullptr);
}

}  // namespace
}  // namespace mcrdl
