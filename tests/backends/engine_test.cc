// Direct unit tests for the data semantics of apply_collective — every
// operation's block movement and reduction math, independent of timing.
#include "src/backends/engine.h"

#include <gtest/gtest.h>

namespace mcrdl::backends_detail {
namespace {

Tensor vec(std::initializer_list<double> vals) {
  Tensor t = Tensor::zeros({static_cast<std::int64_t>(vals.size())}, DType::F64, nullptr);
  std::int64_t i = 0;
  for (double v : vals) t.set(i++, v);
  return t;
}

TEST(ApplyCollective, AllReduceSum) {
  std::vector<ArrivalSlot> slots(3);
  slots[0].input = vec({1, 2});
  slots[1].input = vec({10, 20});
  slots[2].input = vec({100, 200});
  apply_collective({OpType::AllReduce, 16, 0, ReduceOp::Sum}, slots);
  for (auto& s : slots) EXPECT_EQ(s.input.to_vector(), (std::vector<double>{111, 222}));
}

TEST(ApplyCollective, AllReduceAvgDividesByWorld) {
  std::vector<ArrivalSlot> slots(4);
  for (int r = 0; r < 4; ++r) slots[static_cast<std::size_t>(r)].input = vec({4.0 * r});
  apply_collective({OpType::AllReduce, 8, 0, ReduceOp::Avg}, slots);
  for (auto& s : slots) EXPECT_EQ(s.input.to_vector(), (std::vector<double>{6.0}));
}

TEST(ApplyCollective, AllReduceMinMax) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({5, 1});
  slots[1].input = vec({3, 9});
  apply_collective({OpType::AllReduce, 16, 0, ReduceOp::Max}, slots);
  EXPECT_EQ(slots[0].input.to_vector(), (std::vector<double>{5, 9}));
  slots[0].input = vec({5, 1});
  slots[1].input = vec({3, 9});
  apply_collective({OpType::AllReduce, 16, 0, ReduceOp::Min}, slots);
  EXPECT_EQ(slots[1].input.to_vector(), (std::vector<double>{3, 1}));
}

TEST(ApplyCollective, ReduceLandsOnRootOnly) {
  std::vector<ArrivalSlot> slots(3);
  slots[0].input = vec({1});
  slots[1].input = vec({2});
  slots[2].input = vec({3});
  apply_collective({OpType::Reduce, 8, 1, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[1].input.to_vector(), (std::vector<double>{6}));
  EXPECT_EQ(slots[0].input.to_vector(), (std::vector<double>{1}));  // untouched
  EXPECT_EQ(slots[2].input.to_vector(), (std::vector<double>{3}));
}

TEST(ApplyCollective, Broadcast) {
  std::vector<ArrivalSlot> slots(3);
  slots[0].input = vec({0, 0});
  slots[1].input = vec({7, 8});
  slots[2].input = vec({0, 0});
  apply_collective({OpType::Broadcast, 16, 1, ReduceOp::Sum}, slots);
  for (auto& s : slots) EXPECT_EQ(s.input.to_vector(), (std::vector<double>{7, 8}));
}

TEST(ApplyCollective, AllGather) {
  std::vector<ArrivalSlot> slots(3);
  for (int r = 0; r < 3; ++r) {
    slots[static_cast<std::size_t>(r)].input = vec({r * 10.0, r * 10.0 + 1});
    slots[static_cast<std::size_t>(r)].output = Tensor::zeros({6}, DType::F64, nullptr);
  }
  apply_collective({OpType::AllGather, 16, 0, ReduceOp::Sum}, slots);
  for (auto& s : slots) {
    EXPECT_EQ(s.output.to_vector(), (std::vector<double>{0, 1, 10, 11, 20, 21}));
  }
}

TEST(ApplyCollective, AllGatherV) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({1});
  slots[1].input = vec({2, 3, 4});
  for (auto& s : slots) {
    s.output = Tensor::zeros({4}, DType::F64, nullptr);
    s.recv_counts = {1, 3};
    s.recv_displs = {0, 1};
  }
  apply_collective({OpType::AllGatherV, 8, 0, ReduceOp::Sum}, slots);
  for (auto& s : slots) EXPECT_EQ(s.output.to_vector(), (std::vector<double>{1, 2, 3, 4}));
}

// Non-contiguous displacements: receivers may leave gaps between blocks and
// place them out of rank order; untouched positions must keep their values.
TEST(ApplyCollective, AllGatherVGappedAndReorderedDispls) {
  std::vector<ArrivalSlot> slots(3);
  slots[0].input = vec({1, 2});
  slots[1].input = vec({3});
  slots[2].input = vec({4, 5});
  for (auto& s : slots) {
    s.output = Tensor::zeros({8}, DType::F64, nullptr);
    s.output.set(2, -1.0);  // gap sentinel
    s.recv_counts = {2, 1, 2};
    s.recv_displs = {6, 0, 3};  // rank 0's block last, rank 1's first, a hole at [2]
  }
  apply_collective({OpType::AllGatherV, 16, 0, ReduceOp::Sum}, slots);
  for (auto& s : slots) {
    EXPECT_EQ(s.output.to_vector(), (std::vector<double>{3, 0, -1, 4, 5, 0, 1, 2}));
  }
}

TEST(ApplyCollective, AllGatherVZeroCountContribution) {
  std::vector<ArrivalSlot> slots(3);
  slots[0].input = vec({7});
  slots[1].input = vec({99});  // has data, but contributes 0 elements
  slots[2].input = vec({8, 9});
  for (auto& s : slots) {
    s.output = Tensor::zeros({3}, DType::F64, nullptr);
    s.recv_counts = {1, 0, 2};
    s.recv_displs = {0, 1, 1};
  }
  apply_collective({OpType::AllGatherV, 24, 0, ReduceOp::Sum}, slots);
  for (auto& s : slots) EXPECT_EQ(s.output.to_vector(), (std::vector<double>{7, 8, 9}));
}

TEST(ApplyCollective, GatherAtRoot) {
  std::vector<ArrivalSlot> slots(3);
  for (int r = 0; r < 3; ++r) slots[static_cast<std::size_t>(r)].input = vec({r + 1.0});
  slots[2].output = Tensor::zeros({3}, DType::F64, nullptr);
  apply_collective({OpType::Gather, 8, 2, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[2].output.to_vector(), (std::vector<double>{1, 2, 3}));
}

TEST(ApplyCollective, GatherV) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({1, 2});
  slots[1].input = vec({9});
  slots[0].output = Tensor::zeros({3}, DType::F64, nullptr);
  slots[0].recv_counts = {2, 1};
  slots[0].recv_displs = {0, 2};
  apply_collective({OpType::GatherV, 16, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{1, 2, 9}));
}

TEST(ApplyCollective, Scatter) {
  std::vector<ArrivalSlot> slots(3);
  slots[0].input = vec({10, 20, 30});
  for (auto& s : slots) s.output = Tensor::zeros({1}, DType::F64, nullptr);
  apply_collective({OpType::Scatter, 8, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{10}));
  EXPECT_EQ(slots[1].output.to_vector(), (std::vector<double>{20}));
  EXPECT_EQ(slots[2].output.to_vector(), (std::vector<double>{30}));
}

TEST(ApplyCollective, ScatterV) {
  std::vector<ArrivalSlot> slots(2);
  slots[1].input = vec({1, 2, 3});
  slots[1].send_counts = {2, 1};
  slots[1].send_displs = {0, 2};
  slots[0].output = Tensor::zeros({2}, DType::F64, nullptr);
  slots[1].output = Tensor::zeros({1}, DType::F64, nullptr);
  apply_collective({OpType::ScatterV, 8, 1, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{1, 2}));
  EXPECT_EQ(slots[1].output.to_vector(), (std::vector<double>{3}));
}

TEST(ApplyCollective, ReduceScatter) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({1, 2, 3, 4});
  slots[1].input = vec({10, 20, 30, 40});
  slots[0].output = Tensor::zeros({2}, DType::F64, nullptr);
  slots[1].output = Tensor::zeros({2}, DType::F64, nullptr);
  apply_collective({OpType::ReduceScatter, 32, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{11, 22}));
  EXPECT_EQ(slots[1].output.to_vector(), (std::vector<double>{33, 44}));
}

TEST(ApplyCollective, AllToAllSingle) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({1, 2});
  slots[1].input = vec({3, 4});
  slots[0].output = Tensor::zeros({2}, DType::F64, nullptr);
  slots[1].output = Tensor::zeros({2}, DType::F64, nullptr);
  apply_collective({OpType::AllToAllSingle, 16, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{1, 3}));
  EXPECT_EQ(slots[1].output.to_vector(), (std::vector<double>{2, 4}));
}

TEST(ApplyCollective, AllToAllListForm) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].inputs = {vec({1}), vec({2})};
  slots[1].inputs = {vec({3}), vec({4})};
  slots[0].outputs = {vec({0}), vec({0})};
  slots[1].outputs = {vec({0}), vec({0})};
  apply_collective({OpType::AllToAll, 16, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].outputs[0].to_vector(), (std::vector<double>{1}));
  EXPECT_EQ(slots[0].outputs[1].to_vector(), (std::vector<double>{3}));
  EXPECT_EQ(slots[1].outputs[0].to_vector(), (std::vector<double>{2}));
  EXPECT_EQ(slots[1].outputs[1].to_vector(), (std::vector<double>{4}));
}

TEST(ApplyCollective, AllToAllV) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({1, 2, 3});
  slots[0].send_counts = {1, 2};
  slots[0].send_displs = {0, 1};
  slots[1].input = vec({4, 5, 6});
  slots[1].send_counts = {2, 1};
  slots[1].send_displs = {0, 2};
  slots[0].output = Tensor::zeros({3}, DType::F64, nullptr);
  slots[0].recv_counts = {1, 2};
  slots[0].recv_displs = {0, 1};
  slots[1].output = Tensor::zeros({3}, DType::F64, nullptr);
  slots[1].recv_counts = {2, 1};
  slots[1].recv_displs = {0, 2};
  apply_collective({OpType::AllToAllV, 24, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{1, 4, 5}));
  EXPECT_EQ(slots[1].output.to_vector(), (std::vector<double>{2, 3, 6}));
}

// Three ranks, fully irregular exchange matrix including zero-size pairs;
// pins the send_counts[dst] -> recv_displs[src] placement rule.
TEST(ApplyCollective, AllToAllVIrregularThreeRanks) {
  std::vector<ArrivalSlot> slots(3);
  // Send matrix (rows = src, cols = dst), counts: [[1,2,0],[0,1,2],[2,0,1]].
  slots[0].input = vec({1, 2, 3});
  slots[0].send_counts = {1, 2, 0};
  slots[0].send_displs = {0, 1, 3};
  slots[1].input = vec({4, 5, 6});
  slots[1].send_counts = {0, 1, 2};
  slots[1].send_displs = {0, 0, 1};
  slots[2].input = vec({7, 8, 9});
  slots[2].send_counts = {2, 0, 1};
  slots[2].send_displs = {0, 2, 2};
  // Receive sides transpose the matrix; rank 0 reorders arrivals.
  slots[0].output = Tensor::zeros({3}, DType::F64, nullptr);
  slots[0].recv_counts = {1, 0, 2};
  slots[0].recv_displs = {2, 0, 0};  // own block last
  slots[1].output = Tensor::zeros({3}, DType::F64, nullptr);
  slots[1].recv_counts = {2, 1, 0};
  slots[1].recv_displs = {0, 2, 3};
  slots[2].output = Tensor::zeros({3}, DType::F64, nullptr);
  slots[2].recv_counts = {0, 2, 1};
  slots[2].recv_displs = {0, 0, 2};
  apply_collective({OpType::AllToAllV, 24, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].output.to_vector(), (std::vector<double>{7, 8, 1}));
  EXPECT_EQ(slots[1].output.to_vector(), (std::vector<double>{2, 3, 4}));
  EXPECT_EQ(slots[2].output.to_vector(), (std::vector<double>{5, 6, 9}));
}

TEST(ApplyCollective, PhantomSlotsAreSkipped) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = Tensor::phantom({4}, DType::F32, nullptr);
  slots[1].input = Tensor::phantom({4}, DType::F32, nullptr);
  // Must not throw or touch memory.
  apply_collective({OpType::AllReduce, 16, 0, ReduceOp::Sum}, slots);
  SUCCEED();
}

TEST(ApplyCollective, BarrierMovesNothing) {
  std::vector<ArrivalSlot> slots(2);
  slots[0].input = vec({1});
  slots[1].input = vec({2});
  apply_collective({OpType::Barrier, 0, 0, ReduceOp::Sum}, slots);
  EXPECT_EQ(slots[0].input.to_vector(), (std::vector<double>{1}));
  EXPECT_EQ(slots[1].input.to_vector(), (std::vector<double>{2}));
}

}  // namespace
}  // namespace mcrdl::backends_detail
