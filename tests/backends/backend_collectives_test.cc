// End-to-end SPMD correctness of every collective on every backend: each
// test launches one actor per rank against a simulated Lassen or ThetaGPU
// topology, issues the operation through the Backend/Comm API, and verifies
// the resulting tensor data. Parameterized over backend x world x system.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/backends/backend.h"

namespace mcrdl {
namespace {

using Param = std::tuple<std::string, int, std::string>;  // backend, world, system

class CollectiveTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto& [name, world, system] = GetParam();
    // Lassen: 4 GPUs/node (worlds 8+ span nodes); ThetaGPU: 8 GPUs/node.
    net::SystemConfig cfg = system == "lassen"
                                ? net::SystemConfig::lassen((world + 3) / 4)
                                : net::SystemConfig::theta_gpu((world + 7) / 8);
    cluster_ = std::make_unique<ClusterContext>(cfg);
    backend_ = make_backend(name, cluster_.get());
    backend_->init();
    world_size_ = world;
  }

  // Runs fn(rank, comm) across `world_size_` ranks.
  void run(const std::function<void(int, Comm&)>& fn) {
    std::vector<int> ranks;
    for (int r = 0; r < world_size_; ++r) ranks.push_back(r);
    Comm* comm = backend_->group(ranks);
    cluster_->run_spmd(world_size_, [&](int rank) { fn(rank, *comm); });
  }

  bool native(OpType op) const { return backend_->profile().is_native(op); }

  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<Backend> backend_;
  int world_size_ = 0;
};

TEST_P(CollectiveTest, AllReduceSumBlocking) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    Tensor t = Tensor::full({8}, DType::F32, rank + 1.0, cluster_->device(rank));
    comm.all_reduce(rank, t, ReduceOp::Sum, /*async_op=*/false);
    backend_->synchronize(rank);
    const double expect = n * (n + 1) / 2.0;
    for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(t.get(i), expect);
  });
}

TEST_P(CollectiveTest, AllReduceAvgAsync) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    Tensor t = Tensor::full({4}, DType::F64, static_cast<double>(rank), cluster_->device(rank));
    Work w = comm.all_reduce(rank, t, ReduceOp::Avg, /*async_op=*/true);
    w->synchronize();
    const double expect = (n - 1) / 2.0;
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t.get(i), expect);
  });
}

TEST_P(CollectiveTest, BroadcastFromNonZeroRoot) {
  run([&](int rank, Comm& comm) {
    const int root = world_size_ - 1;
    Tensor t = rank == root ? Tensor::arange(6, DType::F32, cluster_->device(rank))
                            : Tensor::zeros({6}, DType::F32, cluster_->device(rank));
    comm.broadcast(rank, t, root, false);
    backend_->synchronize(rank);
    for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(t.get(i), i);
  });
}

TEST_P(CollectiveTest, ReduceToRoot) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    Tensor t = Tensor::full({3}, DType::F32, 1.0, cluster_->device(rank));
    comm.reduce(rank, t, /*root=*/0, ReduceOp::Sum, false);
    backend_->synchronize(rank);
    if (rank == 0) {
      for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(t.get(i), n);
    }
  });
}

TEST_P(CollectiveTest, AllGather) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    Tensor in = Tensor::full({2}, DType::F32, rank * 1.0, cluster_->device(rank));
    Tensor out = Tensor::zeros({2 * n}, DType::F32, cluster_->device(rank));
    comm.all_gather(rank, out, in, false);
    backend_->synchronize(rank);
    for (int r = 0; r < n; ++r) {
      EXPECT_DOUBLE_EQ(out.get(2 * r), r);
      EXPECT_DOUBLE_EQ(out.get(2 * r + 1), r);
    }
  });
}

TEST_P(CollectiveTest, ReduceScatter) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    // Every rank contributes [0, 1, ..., 2n-1]; sum is n×value.
    Tensor in = Tensor::arange(2 * n, DType::F32, cluster_->device(rank));
    Tensor out = Tensor::zeros({2}, DType::F32, cluster_->device(rank));
    comm.reduce_scatter(rank, out, in, ReduceOp::Sum, false);
    backend_->synchronize(rank);
    EXPECT_DOUBLE_EQ(out.get(0), n * (2.0 * rank));
    EXPECT_DOUBLE_EQ(out.get(1), n * (2.0 * rank + 1));
  });
}

TEST_P(CollectiveTest, AllToAllSingle) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    // input[j] = rank*100 + j (one element per destination).
    Tensor in = Tensor::zeros({n}, DType::F32, cluster_->device(rank));
    for (int j = 0; j < n; ++j) in.set(j, rank * 100.0 + j);
    Tensor out = Tensor::zeros({n}, DType::F32, cluster_->device(rank));
    comm.all_to_all_single(rank, out, in, false);
    backend_->synchronize(rank);
    for (int src = 0; src < n; ++src) EXPECT_DOUBLE_EQ(out.get(src), src * 100.0 + rank);
  });
}

TEST_P(CollectiveTest, AllToAllListForm) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    TensorList ins, outs;
    for (int j = 0; j < n; ++j) {
      ins.push_back(Tensor::full({2}, DType::F32, rank * 10.0 + j, cluster_->device(rank)));
      outs.push_back(Tensor::zeros({2}, DType::F32, cluster_->device(rank)));
    }
    comm.all_to_all(rank, outs, ins, false);
    backend_->synchronize(rank);
    for (int src = 0; src < n; ++src) {
      EXPECT_DOUBLE_EQ(outs[static_cast<std::size_t>(src)].get(0), src * 10.0 + rank);
    }
  });
}

TEST_P(CollectiveTest, GatherNativeOrUnsupported) {
  const int n = world_size_;
  if (!native(OpType::Gather)) {
    run([&](int rank, Comm& comm) {
      Tensor in = Tensor::full({1}, DType::F32, 1.0, cluster_->device(rank));
      Tensor out = rank == 0 ? Tensor::zeros({n}, DType::F32, cluster_->device(rank)) : Tensor();
      EXPECT_THROW(comm.gather(rank, out, in, 0, false), UnsupportedOperation);
    });
    return;
  }
  run([&](int rank, Comm& comm) {
    Tensor in = Tensor::full({1}, DType::F32, rank + 0.5, cluster_->device(rank));
    Tensor out = rank == 0 ? Tensor::zeros({n}, DType::F32, cluster_->device(rank)) : Tensor();
    comm.gather(rank, out, in, 0, false);
    backend_->synchronize(rank);
    if (rank == 0) {
      for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(out.get(r), r + 0.5);
    }
  });
}

TEST_P(CollectiveTest, ScatterNativeOrUnsupported) {
  const int n = world_size_;
  if (!native(OpType::Scatter)) {
    GTEST_SKIP() << "covered by GatherNativeOrUnsupported pattern";
  }
  run([&](int rank, Comm& comm) {
    Tensor in = rank == 1 ? Tensor::arange(n, DType::F32, cluster_->device(rank)) : Tensor();
    Tensor out = Tensor::zeros({1}, DType::F32, cluster_->device(rank));
    comm.scatter(rank, out, in, /*root=*/1, false);
    backend_->synchronize(rank);
    EXPECT_DOUBLE_EQ(out.get(0), rank);
  });
}

TEST_P(CollectiveTest, GatherVWithUnevenCounts) {
  if (!native(OpType::GatherV)) {
    GTEST_SKIP() << "backend lacks native vector collectives";
  }
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    // Rank r contributes r+1 elements, all equal to r.
    Tensor in = Tensor::full({rank + 1}, DType::F32, rank * 1.0, cluster_->device(rank));
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    Tensor out =
        rank == 0 ? Tensor::zeros({total}, DType::F32, cluster_->device(rank)) : Tensor();
    comm.gatherv(rank, out, in, 0, counts, displs, false);
    backend_->synchronize(rank);
    if (rank == 0) {
      int pos = 0;
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k <= r; ++k) EXPECT_DOUBLE_EQ(out.get(pos++), r);
      }
    }
  });
}

TEST_P(CollectiveTest, AllToAllVWithUnevenCounts) {
  if (!native(OpType::AllToAllV)) {
    run([&](int rank, Comm& comm) {
      Tensor in = Tensor::zeros({world_size_}, DType::F32, cluster_->device(rank));
      Tensor out = Tensor::zeros({world_size_}, DType::F32, cluster_->device(rank));
      std::vector<int> ones(static_cast<std::size_t>(world_size_), 1);
      std::vector<int> displs;
      for (int r = 0; r < world_size_; ++r) displs.push_back(r);
      EXPECT_THROW(comm.all_to_allv(rank, out, in, ones, displs, ones, displs, false),
                   UnsupportedOperation);
    });
    return;
  }
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    // Uniform counts of 2 via the v-interface.
    Tensor in = Tensor::zeros({2 * n}, DType::F32, cluster_->device(rank));
    for (int j = 0; j < 2 * n; ++j) in.set(j, rank * 1000.0 + j);
    Tensor out = Tensor::zeros({2 * n}, DType::F32, cluster_->device(rank));
    std::vector<int> counts(static_cast<std::size_t>(n), 2), displs;
    for (int r = 0; r < n; ++r) displs.push_back(2 * r);
    comm.all_to_allv(rank, out, in, counts, displs, counts, displs, false);
    backend_->synchronize(rank);
    for (int src = 0; src < n; ++src) {
      EXPECT_DOUBLE_EQ(out.get(2 * src), src * 1000.0 + 2 * rank);
      EXPECT_DOUBLE_EQ(out.get(2 * src + 1), src * 1000.0 + 2 * rank + 1);
    }
  });
}

TEST_P(CollectiveTest, BarrierAlignsRanks) {
  run([&](int rank, Comm& comm) {
    // Stagger arrivals; after the barrier completes everyone observes a
    // time >= the last arrival.
    cluster_->scheduler().sleep_for(rank * 10.0);
    Work w = comm.barrier(rank, true);
    w->synchronize();
    EXPECT_GE(cluster_->scheduler().now(), (world_size_ - 1) * 10.0);
  });
}

TEST_P(CollectiveTest, SendRecvPair) {
  run([&](int rank, Comm& comm) {
    if (world_size_ < 2) return;
    if (rank == 0) {
      Tensor t = Tensor::arange(4, DType::F32, cluster_->device(rank));
      comm.send(rank, t, /*dst=*/1, false);
      backend_->synchronize(rank);
    } else if (rank == 1) {
      Tensor t = Tensor::zeros({4}, DType::F32, cluster_->device(rank));
      comm.recv(rank, t, /*src=*/0, false);
      backend_->synchronize(rank);
      for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t.get(i), i);
    }
  });
}

TEST_P(CollectiveTest, ConsecutiveCollectivesKeepOrder) {
  const int n = world_size_;
  run([&](int rank, Comm& comm) {
    Tensor a = Tensor::full({2}, DType::F32, 1.0, cluster_->device(rank));
    Tensor b = Tensor::full({2}, DType::F32, 2.0, cluster_->device(rank));
    Work wa = comm.all_reduce(rank, a, ReduceOp::Sum, true);
    Work wb = comm.all_reduce(rank, b, ReduceOp::Sum, true);
    wa->synchronize();
    wb->synchronize();
    EXPECT_DOUBLE_EQ(a.get(0), n);
    EXPECT_DOUBLE_EQ(b.get(0), 2.0 * n);
  });
}

TEST_P(CollectiveTest, PhantomTensorsTimeWithoutData) {
  run([&](int rank, Comm& comm) {
    Tensor t = Tensor::phantom({1 << 20}, DType::F16, cluster_->device(rank));
    SimTime before = cluster_->scheduler().now();
    comm.all_reduce(rank, t, ReduceOp::Sum, false);
    backend_->synchronize(rank);
    EXPECT_GT(cluster_->scheduler().now(), before);  // took virtual time
  });
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndWorlds, CollectiveTest,
    ::testing::Combine(::testing::Values("nccl", "sccl", "mv2-gdr", "ompi", "gloo"),
                       ::testing::Values(2, 4, 8, 16), ::testing::Values("lassen", "theta")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_w" + std::to_string(std::get<1>(info.param)) +
                         "_" + std::get<2>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mcrdl
