// Failure-injection tests: a production runtime must fail loudly and
// cleanly, not hang or corrupt state, when ranks die mid-collective, when
// programs misuse the API, or when handles are abandoned.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

TEST(FailureInjection, RankThrowsMidCollectiveUnwindsWholeCluster) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  EXPECT_THROW(cluster.run_spmd([&](int rank) {
                 Api api = mcr.on(rank);
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
                 api.all_reduce("mv2-gdr", t, ReduceOp::Sum, true);
                 if (rank == 2) throw InvalidArgument("simulated rank failure");
                 api.synchronize();  // peers block; must be force-unwound
               }),
               InvalidArgument);
}

TEST(FailureInjection, RankDiesBeforeJoiningIsADeadlockNotAHang) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  EXPECT_THROW(cluster.run_spmd([&](int rank) {
                 if (rank == 3) return;  // silently exits (crashed process)
                 Api api = mcr.on(rank);
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
                 api.all_reduce("mv2-gdr", t);
               }),
               DeadlockError);
}

TEST(FailureInjection, AbandonedAsyncHandlesStillCompleteTheCollective) {
  // Dropping the Work handle must not leak or cancel the operation: the
  // data is still reduced and a later synchronize() drains cleanly.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"nccl"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
    (void)api.all_reduce("nccl", t, ReduceOp::Sum, true);  // handle dropped
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
}

TEST(FailureInjection, MismatchSurfacesOnEveryLateRank) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  try {
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
      if (rank == 0) {
        api.broadcast("mv2-gdr", t, 0);
      } else {
        api.all_reduce("mv2-gdr", t);
      }
    });
    FAIL() << "expected CollectiveMismatch";
  } catch (const CollectiveMismatch& e) {
    // The message must name both operations to be debuggable.
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos);
    EXPECT_NE(what.find("all_reduce"), std::string::npos);
  }
}

TEST(FailureInjection, WrongSizedBuffersRejectedBeforePosting) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  cluster.run_spmd(1, [&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    Tensor in = Tensor::zeros({4}, DType::F32, dev);
    Tensor bad_out = Tensor::zeros({7}, DType::F32, dev);  // not 4 * world
    EXPECT_THROW(api.all_gather("mv2-gdr", bad_out, in), InvalidArgument);
    Tensor bad_rs = Tensor::zeros({3}, DType::F32, dev);
    EXPECT_THROW(api.reduce_scatter("mv2-gdr", bad_rs, in), InvalidArgument);
    Tensor odd = Tensor::zeros({5}, DType::F32, dev);
    EXPECT_THROW(api.all_to_all_single("mv2-gdr", odd, odd), InvalidArgument);
  });
}

TEST(FailureInjection, FusionPendingAtFailureDoesNotCrashTeardown) {
  FusionConfig fcfg;
  fcfg.enabled = true;
  fcfg.buffer_bytes = 1 << 24;   // never fills
  fcfg.flush_timeout_us = 1e9;   // never times out
  McrDlOptions opts;
  opts.fusion = fcfg;
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});
  EXPECT_THROW(cluster.run_spmd([&](int rank) {
                 Api api = mcr.on(rank);
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
                 api.all_reduce("nccl", t, ReduceOp::Sum, true);  // parked in fusion buffer
                 if (rank == 0) throw BackendStateError("injected");
                 cluster.scheduler().sleep_for(1e6);
               }),
               BackendStateError);
  // The context tears down with tensors still parked — no crash, no UB.
}

TEST(FailureInjection, RootOutOfRangeRejected) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  cluster.run_spmd(1, [&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::zeros({4}, DType::F32, cluster.device(rank));
    EXPECT_THROW(api.broadcast("mv2-gdr", t, 99), InvalidArgument);
    EXPECT_THROW(api.reduce("mv2-gdr", t, -1), InvalidArgument);
  });
}

TEST(FailureInjection, ApiForUnknownRankRejected) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"nccl"});
  EXPECT_THROW(mcr.on(99), InvalidArgument);
  EXPECT_THROW(mcr.on(-1), InvalidArgument);
}

// --- FaultInjector-driven scenarios (src/fault/) ---------------------------

TEST(FailureInjection, OutageWithNoAlternativeFailsLoudlyNotSilently) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(fault::FaultSpec::outage("nccl", 0.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});  // the dead backend is the only one
  EXPECT_THROW(cluster.run_spmd([&](int rank) {
                 Api api = mcr.on(rank);
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
                 api.all_reduce("nccl", t);
               }),
               BackendUnavailable);
}

TEST(FailureInjection, FailoverDisabledRefusesToMaskAnOutage) {
  // With failover off, a healthy alternative must NOT be used silently: the
  // outage surfaces so the caller decides.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.failover = false;
  opts.fault.plan.specs.push_back(fault::FaultSpec::outage("nccl", 0.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  EXPECT_THROW(cluster.run_spmd([&](int rank) {
                 Api api = mcr.on(rank);
                 Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
                 api.all_reduce("nccl", t);
               }),
               BackendUnavailable);
}

TEST(FailureInjection, SeededChaosScheduleStillProducesExactSums) {
  // Probabilistic transients with a fixed seed: the fault pattern is fully
  // deterministic, and however the retries and failovers land, every
  // collective must still produce bit-exact results.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.seed = 1234;
  opts.fault.plan.specs.push_back(fault::FaultSpec::transient("mv2-gdr", 0.4));
  opts.fault.retry.max_attempts = 6;
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr", "nccl"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({32}, DType::F32, 1.0, cluster.device(rank));
    for (int i = 0; i < 5; ++i) api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), 1024.0);  // 4^5
  });
  const fault::ResilienceReport& report = mcr.failover()->report();
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.attempted, report.succeeded);
  EXPECT_GT(cluster.faults().stats().transient_injected, 0u);
}

TEST(FailureInjection, InjectorStateResetsOnFinalize) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(fault::FaultSpec::outage("nccl", 0.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  EXPECT_TRUE(cluster.faults().enabled());
  mcr.finalize();
  EXPECT_FALSE(cluster.faults().enabled());
  EXPECT_FALSE(cluster.faults().backend_unavailable("nccl"));
  EXPECT_EQ(mcr.failover(), nullptr);
}

}  // namespace
}  // namespace mcrdl
