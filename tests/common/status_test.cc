// Tests for the error-handling primitives.
#include "src/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace mcrdl {
namespace {

TEST(Status, CheckPassesOnTrue) {
  MCRDL_CHECK(1 + 1 == 2) << "never evaluated";
  SUCCEED();
}

TEST(Status, CheckThrowsOnFalseWithMessage) {
  try {
    MCRDL_CHECK(false) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(Status, CheckThrowsWithoutStreamedMessage) {
  auto stmt = [] { MCRDL_CHECK(false); };
  EXPECT_THROW(stmt(), Error);
}

TEST(Status, CheckDoesNotEvaluateMessageOnSuccess) {
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return "x";
  };
  MCRDL_CHECK(true) << touch();
  EXPECT_EQ(evaluations, 0);
}

TEST(Status, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MCRDL_REQUIRE(false, "bad rank"), InvalidArgument);
  MCRDL_REQUIRE(true, "fine");
}

TEST(Status, RequireMessageIncludesDescription) {
  try {
    MCRDL_REQUIRE(2 < 1, "rank out of range");
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("rank out of range"), std::string::npos);
  }
}

TEST(Status, ErrorHierarchy) {
  EXPECT_THROW(throw DeadlockError("d"), Error);
  EXPECT_THROW(throw BackendStateError("b"), Error);
  EXPECT_THROW(throw InvalidArgument("i"), Error);
  EXPECT_THROW(throw TimeoutError("t"), Error);
  EXPECT_THROW(throw BackendUnavailable("u"), Error);
  EXPECT_THROW(throw TransientFault("f"), Error);
}

TEST(Status, FaultErrorsAreDistinctlyCatchable) {
  // The retry/failover machinery dispatches on the concrete type; a
  // TransientFault must not be caught as BackendUnavailable and vice versa.
  auto raise_transient = [] { throw TransientFault("flap"); };
  EXPECT_THROW(raise_transient(), TransientFault);
  try {
    raise_transient();
    FAIL();
  } catch (const BackendUnavailable&) {
    FAIL() << "TransientFault caught as BackendUnavailable";
  } catch (const TransientFault& e) {
    EXPECT_NE(std::string(e.what()).find("flap"), std::string::npos);
  }
  try {
    throw TimeoutError("rendezvous stalled");
  } catch (const TransientFault&) {
    FAIL() << "TimeoutError caught as TransientFault";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("stalled"), std::string::npos);
  }
}

TEST(Status, FaultErrorsPreserveMessages) {
  TimeoutError t("waited 500us; missing rank 3");
  EXPECT_NE(std::string(t.what()).find("missing rank 3"), std::string::npos);
  BackendUnavailable u("backend 'nccl' is out of service");
  EXPECT_NE(std::string(u.what()).find("nccl"), std::string::npos);
}

}  // namespace
}  // namespace mcrdl
