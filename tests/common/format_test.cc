// Tests for formatting helpers and the text table printer.
#include "src/common/format.h"

#include <gtest/gtest.h>

namespace mcrdl {
namespace {

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(256), "256 B");
  EXPECT_EQ(format_bytes(1024), "1 KiB");
  EXPECT_EQ(format_bytes(4096), "4 KiB");
  EXPECT_EQ(format_bytes(1048576), "1 MiB");
  EXPECT_EQ(format_bytes(3 * 1048576), "3 MiB");
  EXPECT_EQ(format_bytes(std::size_t{1} << 30), "1 GiB");
  EXPECT_EQ(format_bytes(1536), "1536 B");  // non-integral KiB stays in bytes
}

TEST(Format, TimeUs) {
  EXPECT_EQ(format_time_us(12.3), "12.30 us");
  EXPECT_EQ(format_time_us(4567.0), "4.567 ms");
  EXPECT_EQ(format_time_us(2.5e6), "2.500 s");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.314), "31.4%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable t({"Message Size", "Backend"});
  t.add_row({"256", "MVAPICH2-GDR"});
  t.add_row({"4096", "NCCL"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| Message Size | Backend      |"), std::string::npos);
  EXPECT_NE(s.find("| 256          | MVAPICH2-GDR |"), std::string::npos);
  EXPECT_NE(s.find("| 4096         | NCCL         |"), std::string::npos);
}

TEST(Format, TextTablePadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| 1 |   |   |"), std::string::npos);
}

}  // namespace
}  // namespace mcrdl
