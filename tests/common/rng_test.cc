// Tests for the deterministic RNG.
#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace mcrdl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.uniform(5.0, 6.0);
    EXPECT_GE(d, 5.0);
    EXPECT_LT(d, 6.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng master(42);
  Rng c1 = master.split(1);
  Rng c2 = master.split(2);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) {
    values.insert(c1.next_u64());
    values.insert(c2.next_u64());
  }
  EXPECT_EQ(values.size(), 64u);  // no collisions between streams
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.split(5), cb = b.split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace mcrdl
