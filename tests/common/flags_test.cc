// Tests for the CLI flag parser used by the tools.
#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace mcrdl {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(Flags, DefaultsApply) {
  Flags f;
  f.define("size", "1024", "message size");
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  EXPECT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(f.get("size"), "1024");
  EXPECT_EQ(f.get_int("size"), 1024);
}

TEST(Flags, EqualsAndSpaceSyntax) {
  Flags f;
  f.define("a", "", "");
  f.define("b", "", "");
  std::vector<std::string> args = {"prog", "--a=x", "--b", "y"};
  auto argv = argv_of(args);
  EXPECT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(f.get("a"), "x");
  EXPECT_EQ(f.get("b"), "y");
}

TEST(Flags, UnknownFlagRejected) {
  Flags f;
  f.define("a", "", "");
  std::vector<std::string> args = {"prog", "--nope=1"};
  auto argv = argv_of(args);
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()), InvalidArgument);
}

TEST(Flags, MissingValueRejected) {
  Flags f;
  f.define("a", "", "");
  std::vector<std::string> args = {"prog", "--a"};
  auto argv = argv_of(args);
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()), InvalidArgument);
}

TEST(Flags, PositionalArgumentRejected) {
  Flags f;
  std::vector<std::string> args = {"prog", "stray"};
  auto argv = argv_of(args);
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()), InvalidArgument);
}

TEST(Flags, HelpShortCircuits) {
  Flags f;
  f.define("a", "1", "the a flag");
  std::vector<std::string> args = {"prog", "--help"};
  auto argv = argv_of(args);
  EXPECT_FALSE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(f.help("prog").find("the a flag"), std::string::npos);
}

TEST(Flags, TypedAccessors) {
  Flags f;
  f.define("n", "7", "");
  f.define("x", "2.5", "");
  f.define("on", "true", "");
  f.define("off", "0", "");
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("n"), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x"), 2.5);
  EXPECT_TRUE(f.get_bool("on"));
  EXPECT_FALSE(f.get_bool("off"));
  EXPECT_THROW(f.get_int("x"), InvalidArgument);  // "2.5" is not an int? stoi accepts prefix
}

TEST(Flags, ListAccessors) {
  Flags f;
  f.define("items", "a,b,c", "");
  f.define("sizes", "1k,4m,256", "");
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_list("items"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(f.get_size_list("sizes"), (std::vector<std::size_t>{1024, 4u << 20, 256}));
}

TEST(Flags, DuplicateDefinitionRejected) {
  Flags f;
  f.define("a", "", "");
  EXPECT_THROW(f.define("a", "", ""), InvalidArgument);
}

TEST(ParseSize, SuffixesAndErrors) {
  EXPECT_EQ(parse_size("512"), 512u);
  EXPECT_EQ(parse_size("4k"), 4096u);
  EXPECT_EQ(parse_size("2m"), 2u << 20);
  EXPECT_EQ(parse_size("1g"), 1u << 30);
  EXPECT_EQ(parse_size("1G"), 1u << 30);
  EXPECT_THROW(parse_size(""), InvalidArgument);
  EXPECT_THROW(parse_size("abc"), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl
