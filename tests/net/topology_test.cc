// Tests for cluster topology and rank→hardware mapping.
#include "src/net/topology.h"

#include <gtest/gtest.h>

namespace mcrdl::net {
namespace {

TEST(Topology, LassenPreset) {
  SystemConfig c = SystemConfig::lassen(16);
  EXPECT_EQ(c.name, "Lassen");
  EXPECT_EQ(c.num_nodes, 16);
  EXPECT_EQ(c.gpus_per_node, 4);
  EXPECT_EQ(c.world_size(), 64);
  EXPECT_GT(c.intra_node.bandwidth_gbps, c.inter_node.bandwidth_gbps);
  EXPECT_LT(c.intra_node.latency_us, c.inter_node.latency_us);
}

TEST(Topology, ThetaGpuPreset) {
  SystemConfig c = SystemConfig::theta_gpu(4);
  EXPECT_EQ(c.name, "ThetaGPU");
  EXPECT_EQ(c.gpus_per_node, 8);
  EXPECT_EQ(c.world_size(), 32);
  // A100 nodes are faster than V100 nodes in every dimension.
  SystemConfig lassen = SystemConfig::lassen(4);
  EXPECT_GT(c.gpu_tflops, lassen.gpu_tflops);
  EXPECT_GT(c.intra_node.bandwidth_gbps, lassen.intra_node.bandwidth_gbps);
}

TEST(Topology, BlockRankLayout) {
  Topology topo(SystemConfig::lassen(4));  // 16 GPUs, 4 per node
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(15), 3);
  EXPECT_EQ(topo.local_of(0), 0);
  EXPECT_EQ(topo.local_of(5), 1);
  EXPECT_EQ(topo.local_of(15), 3);
}

TEST(Topology, SameNodePredicate) {
  Topology topo(SystemConfig::lassen(2));
  EXPECT_TRUE(topo.same_node(0, 3));
  EXPECT_FALSE(topo.same_node(3, 4));
  EXPECT_TRUE(topo.same_node(5, 5));
}

TEST(Topology, LinkSelection) {
  Topology topo(SystemConfig::lassen(2));
  EXPECT_DOUBLE_EQ(topo.link(0, 1).bandwidth_gbps, topo.config().intra_node.bandwidth_gbps);
  EXPECT_DOUBLE_EQ(topo.link(0, 4).bandwidth_gbps, topo.config().inter_node.bandwidth_gbps);
}

TEST(Topology, NicSharingDividesBandwidth) {
  Topology topo(SystemConfig::lassen(2));
  double solo = topo.inter_node_bw_per_gpu(1);
  double shared = topo.inter_node_bw_per_gpu(4);
  EXPECT_GT(solo, shared);
  // Concurrent ranks split the injection bandwidth and pay the multi-process
  // arbitration tax on top; a sole user pays neither.
  EXPECT_NEAR(shared * 4,
              topo.config().nic_bandwidth_gbps * topo.config().nic_sharing_eff, 1e-9);
  EXPECT_LT(shared * 4, topo.config().nic_bandwidth_gbps);
  // A single GPU is limited by its own HCA path, not the whole NIC pool.
  EXPECT_LE(solo, topo.config().inter_node.bandwidth_gbps);
}

TEST(Topology, RankOutOfRangeRejected) {
  Topology topo(SystemConfig::lassen(1));
  EXPECT_THROW(topo.node_of(-1), InvalidArgument);
  EXPECT_THROW(topo.node_of(4), InvalidArgument);
  EXPECT_THROW(topo.local_of(100), InvalidArgument);
}

TEST(Topology, LinkTransferTime) {
  LinkSpec link{2.0, 10.0};  // 2us + 10 GB/s
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 2.0);
  // 10 GB/s == 10,000 bytes/us, so 1 MB takes ~104.8576us + latency.
  EXPECT_NEAR(link.transfer_time(1 << 20), 2.0 + 104.8576, 1e-6);
}

TEST(Topology, InvalidConfigsRejected) {
  EXPECT_THROW(SystemConfig::lassen(0), InvalidArgument);
  EXPECT_THROW(SystemConfig::theta_gpu(-1), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl::net
