// Structural properties of the collective cost models: monotonicity in
// message size and scale, sanity of the communicator-shape helper, and
// behaviour at degenerate sizes. Parameterized across backends and ops.
#include "src/net/cost.h"

#include <gtest/gtest.h>

#include <tuple>

namespace mcrdl::net {
namespace {

TEST(CommShape, SingleNode) {
  Topology topo(SystemConfig::lassen(1));
  CommShape s = CommShape::over(topo);
  EXPECT_EQ(s.world, 4);
  EXPECT_EQ(s.nodes, 1);
  EXPECT_EQ(s.ppn, 4);
}

TEST(CommShape, MultiNode) {
  Topology topo(SystemConfig::lassen(16));
  CommShape s = CommShape::over(topo);
  EXPECT_EQ(s.world, 64);
  EXPECT_EQ(s.nodes, 16);
  EXPECT_EQ(s.ppn, 4);
}

TEST(CommShape, SubWorld) {
  Topology topo(SystemConfig::lassen(16));
  CommShape s = CommShape::over(topo, 8);
  EXPECT_EQ(s.world, 8);
  EXPECT_EQ(s.nodes, 2);
  EXPECT_EQ(s.ppn, 4);
  CommShape tiny = CommShape::over(topo, 2);
  EXPECT_EQ(tiny.nodes, 1);
  EXPECT_EQ(tiny.ppn, 2);
}

TEST(CommShape, OutOfRangeRejected) {
  Topology topo(SystemConfig::lassen(2));
  EXPECT_THROW(CommShape::over(topo, 0), InvalidArgument);
  EXPECT_THROW(CommShape::over(topo, 9), InvalidArgument);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(64), 6);
  EXPECT_EQ(ceil_log2(65), 7);
  EXPECT_THROW(ceil_log2(0), InvalidArgument);
}

// --- property sweep: backend × op ------------------------------------------

using BackendOp = std::tuple<std::string, OpType>;

class CostPropertyTest : public ::testing::TestWithParam<BackendOp> {
 protected:
  static BackendProfile profile_by_name(const std::string& name) {
    for (auto& p : all_backend_profiles()) {
      if (p.name == name) return p;
    }
    throw InvalidArgument("unknown backend profile: " + name);
  }
};

TEST_P(CostPropertyTest, MonotoneInMessageSize) {
  const auto& [backend, op] = GetParam();
  Topology topo(SystemConfig::lassen(16));
  CostModel model(&topo, profile_by_name(backend));
  CommShape shape = CommShape::over(topo);
  double prev = 0.0;
  for (std::size_t bytes = 256; bytes <= (16u << 20); bytes *= 4) {
    double cost = model.collective_cost(op, bytes, shape);
    EXPECT_GE(cost, prev) << backend << " " << op_name(op) << " at " << bytes << " bytes";
    EXPECT_GT(cost, 0.0);
    prev = cost;
  }
}

TEST_P(CostPropertyTest, MonotoneInScale) {
  const auto& [backend, op] = GetParam();
  CostModel* unused = nullptr;
  (void)unused;
  double prev = 0.0;
  for (int nodes : {2, 4, 8, 16, 32}) {
    Topology topo(SystemConfig::lassen(nodes));
    CostModel model(&topo, profile_by_name(backend));
    double cost = model.collective_cost(op, 1 << 20, CommShape::over(topo));
    EXPECT_GE(cost, prev * 0.999) << backend << " " << op_name(op) << " at " << nodes << " nodes";
    prev = cost;
  }
}

TEST_P(CostPropertyTest, SingleRankCostsOnlyLaunchOverhead) {
  const auto& [backend, op] = GetParam();
  Topology topo(SystemConfig::lassen(1));
  BackendProfile profile = profile_by_name(backend);
  CostModel model(&topo, profile);
  CommShape solo{1, 1, 1};
  EXPECT_DOUBLE_EQ(model.collective_cost(op, 1 << 20, solo), profile.launch_overhead_us);
}

TEST_P(CostPropertyTest, ZeroByteCollectiveIsLatencyOnlyAndFinite) {
  const auto& [backend, op] = GetParam();
  Topology topo(SystemConfig::lassen(4));
  CostModel model(&topo, profile_by_name(backend));
  double cost = model.collective_cost(op, 0, CommShape::over(topo));
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1000.0);  // pure latency, no wire time
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndOps, CostPropertyTest,
    ::testing::Combine(::testing::Values("nccl", "mv2-gdr", "ompi", "sccl"),
                       ::testing::Values(OpType::AllReduce, OpType::AllGather,
                                         OpType::ReduceScatter, OpType::Broadcast, OpType::Reduce,
                                         OpType::Gather, OpType::Scatter, OpType::AllToAllSingle,
                                         OpType::AllToAll)),
    [](const ::testing::TestParamInfo<BackendOp>& info) {
      std::string name = std::get<0>(info.param) + "_" + op_name(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CostModel, P2pIntraNodeCheaperThanInter) {
  Topology topo(SystemConfig::lassen(2));
  CostModel model(&topo, mv2_gdr_profile());
  EXPECT_LT(model.p2p_cost(1 << 20, 0, 1), model.p2p_cost(1 << 20, 0, 4));
}

TEST(CostModel, P2pRendezvousKicksInAboveEagerThreshold) {
  Topology topo(SystemConfig::lassen(2));
  BackendProfile p = mv2_gdr_profile();
  CostModel model(&topo, p);
  double below = model.p2p_cost(p.eager_threshold, 0, 1);
  double above = model.p2p_cost(p.eager_threshold + 1, 0, 1);
  EXPECT_GT(above - below, p.rendezvous_overhead_us * 0.9);
}

TEST(CostModel, SendRecvRequireP2pCost) {
  Topology topo(SystemConfig::lassen(2));
  CostModel model(&topo, nccl_profile());
  EXPECT_THROW(model.collective_cost(OpType::Send, 1024, CommShape::over(topo)), InvalidArgument);
}

TEST(CostModel, VectorCollectivesShareBaseFormulas) {
  Topology topo(SystemConfig::lassen(4));
  CostModel model(&topo, mv2_gdr_profile());
  CommShape shape = CommShape::over(topo);
  EXPECT_DOUBLE_EQ(model.collective_cost(OpType::AllGather, 4096, shape),
                   model.collective_cost(OpType::AllGatherV, 4096, shape));
  EXPECT_DOUBLE_EQ(model.collective_cost(OpType::Gather, 4096, shape),
                   model.collective_cost(OpType::GatherV, 4096, shape));
}

// Tenant contention (src/sched/): an installed ContentionScale divides the
// contended link class's bandwidth; the identity scale is bit-exact with no
// scale installed, so the serving layer is invisible to single-job runs.
TEST(CostModel, IdentityContentionIsBitIdentical) {
  Topology topo(SystemConfig::lassen(2));
  CostModel bare(&topo, nccl_profile());
  CostModel scaled(&topo, nccl_profile());
  ContentionScale identity;
  scaled.set_contention(&identity);
  CommShape shape = CommShape::over(topo);
  for (std::size_t bytes : {std::size_t{1} << 10, std::size_t{1} << 20, std::size_t{1} << 26}) {
    EXPECT_EQ(bare.collective_cost(OpType::AllReduce, bytes, shape),
              scaled.collective_cost(OpType::AllReduce, bytes, shape));
    EXPECT_EQ(bare.collective_cost(OpType::AllToAllSingle, bytes, shape),
              scaled.collective_cost(OpType::AllToAllSingle, bytes, shape));
  }
  EXPECT_EQ(bare.p2p_cost(1 << 20, 0, 4), scaled.p2p_cost(1 << 20, 0, 4));
}

TEST(CostModel, InterContentionSlowsCrossNodeTraffic) {
  Topology topo(SystemConfig::lassen(2));
  CostModel bare(&topo, mv2_gdr_profile());
  CostModel scaled(&topo, mv2_gdr_profile());
  ContentionScale contention;
  contention.inter = 2.0;
  scaled.set_contention(&contention);
  CommShape shape = CommShape::over(topo);

  // Transfer-dominated cross-node collectives slow down; a shared fabric at
  // half bandwidth can at most double the cost.
  const std::size_t big = std::size_t{16} << 20;
  const double clean = bare.collective_cost(OpType::AllReduce, big, shape);
  const double contended = scaled.collective_cost(OpType::AllReduce, big, shape);
  EXPECT_GT(contended, clean);
  EXPECT_LE(contended, 2.0 * clean + 1e-6);

  // Intra-node traffic does not cross the contended fabric.
  EXPECT_EQ(bare.p2p_cost(1 << 20, 0, 1), scaled.p2p_cost(1 << 20, 0, 1));
  EXPECT_GT(scaled.p2p_cost(1 << 20, 0, 4), bare.p2p_cost(1 << 20, 0, 4));
}

TEST(CostModel, IntraContentionSlowsNvlinkOnly) {
  Topology topo(SystemConfig::lassen(2));
  CostModel bare(&topo, nccl_profile());
  CostModel scaled(&topo, nccl_profile());
  ContentionScale contention;
  contention.intra = 3.0;
  scaled.set_contention(&contention);
  EXPECT_GT(scaled.p2p_cost(1 << 22, 0, 1), bare.p2p_cost(1 << 22, 0, 1));
  EXPECT_EQ(scaled.p2p_cost(1 << 22, 0, 4), bare.p2p_cost(1 << 22, 0, 4));
}

TEST(CostModel, BackendProfilesDeclareExpectedCapabilities) {
  auto nccl = nccl_profile();
  EXPECT_TRUE(nccl.stream_aware);
  EXPECT_FALSE(nccl.native_vector_collectives);
  EXPECT_FALSE(nccl.is_native(OpType::Gather));
  EXPECT_FALSE(nccl.is_native(OpType::AllToAllV));
  EXPECT_TRUE(nccl.is_native(OpType::AllReduce));

  auto mv2 = mv2_gdr_profile();
  EXPECT_FALSE(mv2.stream_aware);
  EXPECT_TRUE(mv2.native_vector_collectives);
  EXPECT_TRUE(mv2.is_native(OpType::GatherV));

  auto sccl = sccl_profile();
  EXPECT_TRUE(sccl.stream_aware);
  EXPECT_TRUE(sccl.overlapped_two_level);
}

}  // namespace
}  // namespace mcrdl::net
