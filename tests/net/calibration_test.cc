// Calibration tests: pin the paper-observed performance orderings that the
// whole evaluation depends on (Section I-C, Figure 2, Table II).
//
// These are the "shape" contracts of the reproduction — if a profile
// constant changes and one of these breaks, the downstream figures stop
// matching the paper.
#include <gtest/gtest.h>

#include <string>

#include "src/net/cost.h"

namespace mcrdl::net {
namespace {

// Name of the cheapest backend for (op, bytes) on the given topology.
std::string best_backend(const Topology& topo, OpType op, std::size_t bytes) {
  std::string best;
  double best_cost = 0.0;
  for (const auto& profile : all_backend_profiles()) {
    CostModel model(&topo, profile);
    double cost = model.collective_cost(op, bytes, CommShape::over(topo));
    if (best.empty() || cost < best_cost) {
      best = profile.name;
      best_cost = cost;
    }
  }
  return best;
}

double cost_of(const Topology& topo, const BackendProfile& p, OpType op, std::size_t bytes) {
  return CostModel(&topo, p).collective_cost(op, bytes, CommShape::over(topo));
}

// --- Table II: all_gather tuning table at 64 Lassen GPUs --------------------

TEST(Calibration, TableII_AllGatherSmallMessagesGoToMv2Gdr) {
  Topology topo(SystemConfig::lassen(16));  // 64 GPUs
  for (std::size_t bytes : {256u, 512u, 1024u, 2048u}) {
    EXPECT_EQ(best_backend(topo, OpType::AllGather, bytes), "mv2-gdr") << bytes << " bytes";
  }
}

TEST(Calibration, TableII_AllGatherMidMessagesGoToNccl) {
  Topology topo(SystemConfig::lassen(16));
  for (std::size_t bytes : {4096u, 8192u}) {
    EXPECT_EQ(best_backend(topo, OpType::AllGather, bytes), "nccl") << bytes << " bytes";
  }
}

TEST(Calibration, TableII_AllGatherLargeMessagesGoToSccl) {
  Topology topo(SystemConfig::lassen(16));
  for (std::size_t bytes : {16384u, 32768u, 262144u}) {
    EXPECT_EQ(best_backend(topo, OpType::AllGather, bytes), "sccl") << bytes << " bytes";
  }
}

// --- Figure 2(a): (i)Allreduce at 64 Lassen GPUs ----------------------------

TEST(Calibration, Fig2a_Mv2GdrWinsSmallAllreduce) {
  Topology topo(SystemConfig::lassen(16));
  for (std::size_t bytes : {1024u, 4096u, 16384u}) {
    EXPECT_EQ(best_backend(topo, OpType::AllReduce, bytes), "mv2-gdr") << bytes << " bytes";
  }
}

TEST(Calibration, Fig2a_NcclWinsLargeAllreduce) {
  Topology topo(SystemConfig::lassen(16));
  for (std::size_t bytes : {1u << 20, 8u << 20, 64u << 20}) {
    EXPECT_EQ(best_backend(topo, OpType::AllReduce, bytes), "nccl") << bytes << " bytes";
  }
}

TEST(Calibration, Fig2a_NcclLargeAllreduceAdvantageIsSubstantial) {
  Topology topo(SystemConfig::lassen(16));
  double nccl = cost_of(topo, nccl_profile(), OpType::AllReduce, 64u << 20);
  double mv2 = cost_of(topo, mv2_gdr_profile(), OpType::AllReduce, 64u << 20);
  EXPECT_GT(mv2 / nccl, 1.3);  // paper: NCCL's Allreduce clearly better at MB sizes
}

TEST(Calibration, Fig2a_OpenMpiTrailsMv2Gdr) {
  Topology topo(SystemConfig::lassen(16));
  for (std::size_t bytes : {1024u, 65536u, 1u << 20, 16u << 20}) {
    EXPECT_LT(cost_of(topo, mv2_gdr_profile(), OpType::AllReduce, bytes),
              cost_of(topo, ompi_profile(), OpType::AllReduce, bytes))
        << bytes << " bytes";
  }
}

// --- Figure 2(b): Alltoall at 64 Lassen GPUs --------------------------------

TEST(Calibration, Fig2b_Mv2GdrWinsAlltoallAcrossSizes) {
  Topology topo(SystemConfig::lassen(16));
  for (std::size_t bytes : {4096u, 65536u, 1u << 20, 16u << 20}) {
    EXPECT_EQ(best_backend(topo, OpType::AllToAllSingle, bytes), "mv2-gdr") << bytes << " bytes";
  }
}

TEST(Calibration, Fig2b_NcclAlltoallGapGrowsWithScale) {
  // NCCL's per-peer p2p latency makes its Alltoall scale poorly; the
  // NCCL/MV2 ratio must increase with world size (paper Section I-C).
  double prev_ratio = 0.0;
  for (int nodes : {4, 8, 16, 32, 64}) {
    Topology topo(SystemConfig::lassen(nodes));
    double ratio = cost_of(topo, nccl_profile(), OpType::AllToAllSingle, 1u << 20) /
                   cost_of(topo, mv2_gdr_profile(), OpType::AllToAllSingle, 1u << 20);
    EXPECT_GT(ratio, prev_ratio) << nodes << " nodes";
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 2.0);  // clear separation at 256 GPUs
}

// --- The DS-MoE / DLRM mixing premise ---------------------------------------

TEST(Calibration, MixedBackendPremiseHoldsOnLassen) {
  // The whole point of MCR-DL: at scale, the best Allreduce backend (NCCL)
  // and the best Alltoall backend (MVAPICH2-GDR) are different libraries.
  Topology topo(SystemConfig::lassen(64));  // 256 GPUs
  EXPECT_EQ(best_backend(topo, OpType::AllReduce, 16u << 20), "nccl");
  EXPECT_EQ(best_backend(topo, OpType::AllToAllSingle, 1u << 20), "mv2-gdr");
}

TEST(Calibration, MixedBackendPremiseHoldsOnThetaGpu) {
  Topology topo(SystemConfig::theta_gpu(4));  // 32 GPUs
  EXPECT_EQ(best_backend(topo, OpType::AllReduce, 16u << 20), "nccl");
  EXPECT_EQ(best_backend(topo, OpType::AllToAllSingle, 1u << 20), "mv2-gdr");
}

TEST(Calibration, NcclBeatsMv2OnSmallScaleAllreduceBoundWorkloads) {
  // Paper Fig 8/9: "at smaller scales, NCCL performs better ... because
  // Alltoall is not yet a dominant factor". The premise: NCCL's large-
  // message Allreduce advantage outweighs its Alltoall penalty when the
  // Alltoall payloads are small.
  Topology topo(SystemConfig::theta_gpu(1));  // 8 GPUs, single node
  double nccl_mix = cost_of(topo, nccl_profile(), OpType::AllReduce, 16u << 20) +
                    cost_of(topo, nccl_profile(), OpType::AllToAllSingle, 256u << 10);
  double mv2_mix = cost_of(topo, mv2_gdr_profile(), OpType::AllReduce, 16u << 20) +
                   cost_of(topo, mv2_gdr_profile(), OpType::AllToAllSingle, 256u << 10);
  EXPECT_LT(nccl_mix, mv2_mix);
}

}  // namespace
}  // namespace mcrdl::net
