// Per-tenant process groups on disjoint slices of a shared world: each
// tenant lays out (tp x dp) groups inside its own rank range exactly like a
// dedicated cluster, to_global() lifts them onto global ranks, and losing a
// rank shrinks only the owning tenant's groups — the neighbours' group
// structure is byte-identical before and after.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/process_groups.h"
#include "src/sched/job.h"

namespace mcrdl::sched {
namespace {

// Every group of every kind, lifted to global ranks — a tenant's full comm
// footprint, comparable across recovery events.
std::vector<std::vector<int>> global_footprint(const ProcessGroups& groups,
                                               const RankRange& range) {
  std::vector<std::vector<int>> footprint;
  for (const auto& group : groups.all_tp_groups()) {
    footprint.push_back(to_global(range, group));
  }
  for (const auto& group : groups.all_dp_groups()) {
    footprint.push_back(to_global(range, group));
  }
  return footprint;
}

TEST(TenantGroups, DisjointSlicesProduceDisjointGroups) {
  // Three tenants on a shared 32-rank world: [0,8), [8,16), [16,32).
  const RankRange slices[] = {{0, 8}, {8, 8}, {16, 16}};
  const int tp[] = {2, 4, 2};

  std::set<int> seen;
  for (int t = 0; t < 3; ++t) {
    const ProcessGroups groups(slices[t].count, tp[t]);
    for (const auto& group : global_footprint(groups, slices[t])) {
      for (int rank : group) {
        EXPECT_GE(rank, slices[t].begin);
        EXPECT_LT(rank, slices[t].end());
      }
    }
    // Each tenant's tp groups partition exactly its own slice.
    for (const auto& group : groups.all_tp_groups()) {
      for (int rank : to_global(slices[t], group)) {
        EXPECT_TRUE(seen.insert(rank).second) << "rank " << rank << " in two tenants";
      }
    }
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(TenantGroups, ToGlobalOffsetsLocalRanks) {
  const RankRange range{8, 8};
  const ProcessGroups groups(8, 4);
  EXPECT_EQ(to_global(range, groups.tp_group(0)), (std::vector<int>{8, 9, 10, 11}));
  EXPECT_EQ(to_global(range, groups.tp_group(5)), (std::vector<int>{12, 13, 14, 15}));
  EXPECT_EQ(to_global(range, groups.dp_group(1)), (std::vector<int>{9, 13}));
}

TEST(TenantGroups, LosingARankShrinksOnlyThatTenant) {
  const RankRange slice_a{0, 8};
  const RankRange slice_b{8, 8};
  const RankRange slice_c{16, 16};
  const ProcessGroups tenant_a(slice_a.count, 2);
  ProcessGroups tenant_b(slice_b.count, 4);
  const ProcessGroups tenant_c(slice_c.count, 2);

  const auto footprint_a = global_footprint(tenant_a, slice_a);
  const auto footprint_c = global_footprint(tenant_c, slice_c);

  // Tenant B loses global rank 11 = local rank 3. Recovery is entirely
  // local to B: it shrinks its own groups over its own slice.
  const ShrunkGroups shrunk = shrink_process_groups(tenant_b, {3});
  EXPECT_EQ(shrunk.groups.world(), 7);
  // 7 survivors are not divisible by tp=4, so B's TP collapses...
  EXPECT_FALSE(shrunk.tp_preserved);
  EXPECT_EQ(shrunk.groups.tensor_parallel(), 1);
  // ...and its surviving global ranks stay inside B's slice, skipping 11.
  std::vector<int> survivors_global = to_global(slice_b, shrunk.survivors);
  EXPECT_EQ(survivors_global, (std::vector<int>{8, 9, 10, 12, 13, 14, 15}));
  for (const auto& group : global_footprint(shrunk.groups, slice_b)) {
    for (int rank : group) {
      EXPECT_GE(rank, slice_b.begin);
      EXPECT_LT(rank, slice_b.end());
    }
  }

  // The neighbours never saw the event: identical footprints, element for
  // element.
  EXPECT_EQ(global_footprint(tenant_a, slice_a), footprint_a);
  EXPECT_EQ(global_footprint(tenant_c, slice_c), footprint_c);
}

TEST(TenantGroups, EvenLossPreservesTensorParallel) {
  // Tenant on [16, 32) with tp=2 loses one whole TP pair (local 4, 5):
  // 14 survivors still divide by 2, so TP survives the shrink.
  const RankRange slice{16, 16};
  const ProcessGroups groups(slice.count, 2);
  const ShrunkGroups shrunk = shrink_process_groups(groups, {4, 5});
  EXPECT_TRUE(shrunk.tp_preserved);
  EXPECT_EQ(shrunk.groups.tensor_parallel(), 2);
  EXPECT_EQ(shrunk.groups.world(), 14);
  const std::vector<int> survivors_global = to_global(slice, shrunk.survivors);
  EXPECT_EQ(survivors_global.front(), 16);
  EXPECT_EQ(survivors_global.back(), 31);
  EXPECT_EQ(std::count(survivors_global.begin(), survivors_global.end(), 20), 0);
  EXPECT_EQ(std::count(survivors_global.begin(), survivors_global.end(), 21), 0);
}

TEST(TenantGroups, RankRangeOverlapDetection) {
  const RankRange a{0, 8};
  const RankRange b{8, 8};
  const RankRange c{4, 8};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

}  // namespace
}  // namespace mcrdl::sched
