// Arrival traces: deterministic generation, byte-identical text round
// trips, and line-numbered rejection of malformed input — the same parser
// contract TuningTable::parse established.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/status.h"
#include "src/sched/arrival.h"

namespace mcrdl::sched {
namespace {

TEST(ArrivalTrace, GenerateIsDeterministic) {
  TraceConfig config;
  config.num_jobs = 200;
  config.seed = 42;
  const ArrivalTrace a = generate_trace(config);
  const ArrivalTrace b = generate_trace(config);
  ASSERT_EQ(a.jobs.size(), 200u);
  EXPECT_EQ(a.serialize(), b.serialize());

  config.seed = 43;
  EXPECT_NE(a.serialize(), generate_trace(config).serialize());
}

TEST(ArrivalTrace, ArrivalsAreSortedAndQuantised) {
  TraceConfig config;
  config.num_jobs = 300;
  const ArrivalTrace trace = generate_trace(config);
  double prev = 0.0;
  for (const JobSpec& job : trace.jobs) {
    EXPECT_GE(job.arrival_us, prev);
    // 1ns quantisation: three decimals survive the %.3f text format.
    EXPECT_DOUBLE_EQ(job.arrival_us, std::round(job.arrival_us * 1000.0) / 1000.0);
    prev = job.arrival_us;
  }
}

TEST(ArrivalTrace, RoundTripsByteIdentically) {
  TraceConfig config;
  config.num_jobs = 250;
  config.seed = 7;
  const ArrivalTrace trace = generate_trace(config);
  const std::string text = trace.serialize();
  const ArrivalTrace reparsed = ArrivalTrace::parse(text);
  ASSERT_EQ(reparsed.jobs.size(), trace.jobs.size());
  EXPECT_EQ(reparsed.serialize(), text);
}

TEST(ArrivalTrace, ParseSkipsCommentsAndBlankLines) {
  const ArrivalTrace trace = ArrivalTrace::parse(
      "# header comment\n"
      "\n"
      "0 tenant-0 moe 8 gold 125.000 3\n"
      "# interleaved comment\n"
      "1 tenant-1 dlrm 4 silver 250.500 2\n");
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.jobs[0].tenant, "tenant-0");
  EXPECT_EQ(trace.jobs[0].model, JobModel::MoE);
  EXPECT_EQ(trace.jobs[0].qos, QosClass::Gold);
  EXPECT_DOUBLE_EQ(trace.jobs[1].arrival_us, 250.5);
  EXPECT_EQ(trace.jobs[1].steps, 2);
}

// Each rejection names the offending line, so a corrupt thousand-job trace
// is debuggable without bisecting the file.
TEST(ArrivalTrace, ParseRejectsWithLineNumbers) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      ArrivalTrace::parse(text);
      FAIL() << "expected InvalidArgument for: " << text;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "error '" << e.what() << "' does not mention '" << needle << "'";
    }
  };
  const std::string good = "0 tenant-0 moe 8 gold 125.000 3\n";

  expect_error(good + "1 tenant-1 dlrm 4\n", "line 2");
  expect_error(good + "not-a-number tenant-1 dlrm 4 silver 1.0 2\n", "line 2");
  expect_error(good + "1 tenant-1 dlrm 4 silver 1.0 2 extra\n", "trailing garbage 'extra'");
  expect_error(good + good + "2 tenant-2 gpt3 4 silver 1.0 2\n", "unknown model 'gpt3'");
  expect_error("0 tenant-0 moe 8 platinum 1.0 2\n", "unknown qos class 'platinum'");
  expect_error("0 tenant-0 moe 0 gold 1.0 2\n", "invalid job on arrival trace line 1");
  expect_error("0 tenant-0 moe 8 gold -5.0 2\n", "line 1");
}

TEST(ArrivalTrace, SaveLoadRoundTrip) {
  TraceConfig config;
  config.num_jobs = 50;
  const ArrivalTrace trace = generate_trace(config);
  const std::string path = ::testing::TempDir() + "/arrivals.txt";
  trace.save(path);
  EXPECT_EQ(ArrivalTrace::load(path).serialize(), trace.serialize());
}

TEST(ArrivalTrace, LoadMissingFileThrows) {
  EXPECT_THROW(ArrivalTrace::load("/nonexistent/trace.txt"), Error);
}

TEST(JobSpec, ValidateRejectsNonsense) {
  JobSpec job;
  job.tenant = "tenant-0";
  job.ranks = 4;
  job.steps = 2;
  EXPECT_NO_THROW(job.validate());

  JobSpec bad = job;
  bad.tenant = "";
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = job;
  bad.tenant = "two words";
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = job;
  bad.ranks = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = job;
  bad.steps = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = job;
  bad.arrival_us = -1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl::sched
