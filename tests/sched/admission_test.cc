// Admission control and placement: per-class quotas, bounded queues with
// back-pressure, strict priority dequeue, and the first-fit node-aligned
// rank allocator.
#include <gtest/gtest.h>

#include "src/common/status.h"
#include "src/fault/checkpoint.h"
#include "src/sched/admission.h"
#include "src/sched/placement.h"

namespace mcrdl::sched {
namespace {

JobSpec spec(std::uint64_t id, int ranks, QosClass qos) {
  JobSpec s;
  s.id = id;
  s.tenant = "tenant-" + std::to_string(id);
  s.ranks = ranks;
  s.qos = qos;
  s.steps = 1;
  return s;
}

const auto kAlwaysFits = [](const JobSpec&) { return true; };
const auto kNeverFits = [](const JobSpec&) { return false; };

TEST(Admission, QuotaRanksFollowShares) {
  AdmissionController admission(64, AdmissionConfig{});
  EXPECT_EQ(admission.quota_ranks(QosClass::Gold), 64);
  EXPECT_EQ(admission.quota_ranks(QosClass::Silver), 48);
  EXPECT_EQ(admission.quota_ranks(QosClass::Bronze), 32);
}

TEST(Admission, AdmitsWithinQuotaQueuesBeyond) {
  AdmissionController admission(16, AdmissionConfig{});
  std::string reason;
  // Bronze quota on 16 ranks is 8: one 8-rank job fills it.
  const JobSpec first = spec(0, 8, QosClass::Bronze);
  EXPECT_EQ(admission.arrive(0, first, kAlwaysFits, &reason),
            AdmissionController::Verdict::Admit);
  admission.note_started(first);
  EXPECT_EQ(admission.running_ranks(QosClass::Bronze), 8);

  EXPECT_EQ(admission.arrive(1, spec(1, 4, QosClass::Bronze), kAlwaysFits, &reason),
            AdmissionController::Verdict::Queue);
  EXPECT_EQ(admission.queued(QosClass::Bronze), 1u);

  // Gold has its own quota; the bronze backlog does not block it.
  EXPECT_EQ(admission.arrive(2, spec(2, 8, QosClass::Gold), kAlwaysFits, &reason),
            AdmissionController::Verdict::Admit);

  // Once the bronze job finishes, the queued head becomes runnable.
  admission.note_finished(first);
  const auto popped = admission.pop_runnable(kAlwaysFits);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 1u);
  EXPECT_EQ(admission.queued(QosClass::Bronze), 0u);
}

TEST(Admission, PlacementPressureQueuesEvenUnderQuota) {
  AdmissionController admission(16, AdmissionConfig{});
  std::string reason;
  // Quota would admit, but no contiguous range is free right now.
  EXPECT_EQ(admission.arrive(0, spec(0, 8, QosClass::Gold), kNeverFits, &reason),
            AdmissionController::Verdict::Queue);
  // FIFO within the class: with a queued head, a newcomer can't jump even
  // if placement has recovered for its (smaller) shape.
  EXPECT_EQ(admission.arrive(1, spec(1, 4, QosClass::Gold), kAlwaysFits, &reason),
            AdmissionController::Verdict::Queue);
  EXPECT_EQ(admission.queued(QosClass::Gold), 2u);
}

TEST(Admission, RejectsUnsatisfiableUpFront) {
  AdmissionController admission(16, AdmissionConfig{});
  std::string reason;
  // Bronze quota is 8 ranks on this world; a 12-rank bronze job can never
  // run and must not wedge the queue.
  EXPECT_EQ(admission.arrive(0, spec(0, 12, QosClass::Bronze), kAlwaysFits, &reason),
            AdmissionController::Verdict::Reject);
  EXPECT_NE(reason.find("unsatisfiable"), std::string::npos);
  EXPECT_NE(reason.find("bronze"), std::string::npos);
  EXPECT_EQ(admission.total_queued(), 0u);

  EXPECT_EQ(admission.arrive(1, spec(1, 32, QosClass::Gold), kAlwaysFits, &reason),
            AdmissionController::Verdict::Reject);
}

TEST(Admission, BoundedQueueRejectsWhenFull) {
  AdmissionConfig config;
  config.silver.max_queued = 2;
  AdmissionController admission(16, config);
  std::string reason;
  const JobSpec runner = spec(0, 12, QosClass::Silver);
  ASSERT_EQ(admission.arrive(0, runner, kAlwaysFits, &reason),
            AdmissionController::Verdict::Admit);
  admission.note_started(runner);

  EXPECT_EQ(admission.arrive(1, spec(1, 8, QosClass::Silver), kAlwaysFits, &reason),
            AdmissionController::Verdict::Queue);
  EXPECT_EQ(admission.arrive(2, spec(2, 8, QosClass::Silver), kAlwaysFits, &reason),
            AdmissionController::Verdict::Queue);
  EXPECT_EQ(admission.arrive(3, spec(3, 8, QosClass::Silver), kAlwaysFits, &reason),
            AdmissionController::Verdict::Reject);
  EXPECT_NE(reason.find("queue full"), std::string::npos);
}

TEST(Admission, DequeueIsStrictPriorityThenFifo) {
  AdmissionController admission(16, AdmissionConfig{});
  std::string reason;
  const JobSpec runner = spec(9, 16, QosClass::Gold);
  ASSERT_EQ(admission.arrive(9, runner, kAlwaysFits, &reason),
            AdmissionController::Verdict::Admit);
  admission.note_started(runner);

  // Queue bronze, silver, then two gold jobs while no placement is free
  // (the runner holds all 16 ranks, so the probe fails).
  ASSERT_EQ(admission.arrive(0, spec(0, 4, QosClass::Bronze), kNeverFits, &reason),
            AdmissionController::Verdict::Queue);
  ASSERT_EQ(admission.arrive(1, spec(1, 4, QosClass::Silver), kNeverFits, &reason),
            AdmissionController::Verdict::Queue);
  ASSERT_EQ(admission.arrive(2, spec(2, 4, QosClass::Gold), kNeverFits, &reason),
            AdmissionController::Verdict::Queue);
  ASSERT_EQ(admission.arrive(3, spec(3, 4, QosClass::Gold), kNeverFits, &reason),
            AdmissionController::Verdict::Queue);

  admission.note_finished(runner);
  // Gold first (FIFO within the class), then silver, then bronze.
  std::vector<std::size_t> order;
  while (auto index = admission.pop_runnable(kAlwaysFits)) {
    order.push_back(*index);
    admission.note_started(spec(order.back(), 4,
                                order.back() == 0   ? QosClass::Bronze
                                : order.back() == 1 ? QosClass::Silver
                                                    : QosClass::Gold));
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 3, 1, 0}));
}

TEST(Admission, HeadSatisfiableWhenIdleDetectsWedge) {
  AdmissionController admission(16, AdmissionConfig{});
  std::string reason;
  EXPECT_TRUE(admission.head_satisfiable_when_idle());  // empty queue
  ASSERT_EQ(admission.arrive(0, spec(0, 8, QosClass::Gold), kNeverFits, &reason),
            AdmissionController::Verdict::Queue);
  EXPECT_TRUE(admission.head_satisfiable_when_idle());
  const auto drained = admission.drain();
  EXPECT_EQ(drained, (std::vector<std::size_t>{0}));
  EXPECT_EQ(admission.total_queued(), 0u);
}

TEST(Placement, FirstFitIsNodeAligned) {
  RankAllocator allocator(32, 4);
  const auto a = allocator.allocate(8);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->begin, 0);

  const auto b = allocator.allocate(4);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->begin, 8);

  allocator.release(*a);
  // A node-sized request reuses the freed aligned hole at 0.
  const auto c = allocator.allocate(4);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->begin, 0);

  // 8 ranks skip the sub-node hole at [4, 8) for the aligned fit at 12...
  const auto d = allocator.allocate(8);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->begin, 12);
  // ...but a sub-node request may fill the unaligned hole.
  const auto e = allocator.allocate(2);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->begin, 4);
}

TEST(Placement, ReleaseCoalescesNeighbours) {
  RankAllocator allocator(16, 4);
  const auto a = allocator.allocate(4);
  const auto b = allocator.allocate(4);
  const auto c = allocator.allocate(4);
  ASSERT_TRUE(a && b && c);
  allocator.release(*a);
  allocator.release(*c);
  // c merges with the free tail: [0,4) and [8,16).
  EXPECT_EQ(allocator.free_list().size(), 2u);
  allocator.release(*b);
  // Everything merges back into one free range.
  ASSERT_EQ(allocator.free_list().size(), 1u);
  EXPECT_EQ(allocator.free_list()[0].begin, 0);
  EXPECT_EQ(allocator.free_list()[0].count, 16);
  EXPECT_EQ(allocator.free_ranks(), 16);
}

TEST(Placement, FitsMatchesAllocate) {
  RankAllocator allocator(16, 4);
  EXPECT_TRUE(allocator.fits(16));
  const auto a = allocator.allocate(12);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(allocator.fits(4));
  EXPECT_FALSE(allocator.fits(8));
  EXPECT_FALSE(allocator.allocate(8).has_value());
}

TEST(Placement, DoubleReleaseThrows) {
  RankAllocator allocator(16, 4);
  const auto a = allocator.allocate(4);
  ASSERT_TRUE(a.has_value());
  allocator.release(*a);
  EXPECT_THROW(allocator.release(*a), Error);
}

// --- checkpoint (DESIGN.md §13) ---------------------------------------------

// A controller with running ranks in every class and a mixed backlog, for
// the round-trip tests below.
AdmissionController populated_controller() {
  AdmissionController admission(16, AdmissionConfig{});
  admission.note_started(spec(0, 4, QosClass::Gold));
  admission.note_started(spec(1, 4, QosClass::Silver));
  admission.arrive(2, spec(2, 4, QosClass::Gold), kNeverFits, nullptr);
  admission.arrive(3, spec(3, 2, QosClass::Bronze), kNeverFits, nullptr);
  admission.arrive(4, spec(4, 4, QosClass::Bronze), kNeverFits, nullptr);
  return admission;
}

TEST(AdmissionCheckpoint, SaveRestoreSaveIsByteIdentical) {
  AdmissionController a = populated_controller();
  const std::string snap = a.save_state();

  AdmissionController b(16, AdmissionConfig{});
  b.restore_state(snap);
  EXPECT_EQ(b.save_state(), snap) << "save -> restore -> save must round-trip byte-identically";
  for (QosClass qos : all_qos_classes()) {
    EXPECT_EQ(b.running_ranks(qos), a.running_ranks(qos));
    EXPECT_EQ(b.queued(qos), a.queued(qos));
  }
  // The restored backlog drains in the same strict-priority order.
  std::vector<std::size_t> drained_a = a.drain();
  std::vector<std::size_t> drained_b = b.drain();
  EXPECT_EQ(drained_b, drained_a);
}

TEST(AdmissionCheckpoint, RestoreRejectsWorldMismatchWithoutPartialApply) {
  const std::string snap = populated_controller().save_state();
  AdmissionController other(32, AdmissionConfig{});
  other.arrive(7, spec(7, 4, QosClass::Gold), kNeverFits, nullptr);
  EXPECT_THROW(other.restore_state(snap), InvalidArgument);
  EXPECT_THROW(other.restore_state("not an admission snapshot"), InvalidArgument);
  // A failed restore must leave the controller exactly as it was.
  EXPECT_EQ(other.queued(QosClass::Gold), 1u);
  EXPECT_EQ(other.running_ranks(QosClass::Gold), 0);
}

TEST(AdmissionCheckpoint, RegistersAsACheckpointStoreSection) {
  // The serving layer checkpoints through the same store the runtime uses:
  // an "admission" section, round-tripped like "recovery" and "tuner".
  AdmissionController a = populated_controller();
  fault::CheckpointStore store;
  store.register_section(
      "admission", [&a] { return a.save_state(); },
      [&a](const std::string& body) { a.restore_state(body); });
  const std::string checkpoint = store.save();

  AdmissionController b(16, AdmissionConfig{});
  fault::CheckpointStore other;
  other.register_section(
      "admission", [&b] { return b.save_state(); },
      [&b](const std::string& body) { b.restore_state(body); });
  other.restore(checkpoint);
  EXPECT_EQ(other.save(), checkpoint);
  EXPECT_EQ(b.save_state(), a.save_state());
}

}  // namespace
}  // namespace mcrdl::sched
