// The serving scheduler: deterministic replay, tenant contention dilating
// service times through the real cost models, QoS-weighted fabric shares,
// chaos windows inflating the latency tail, and per-tenant SLO breakers
// shedding a struggling tenant's arrivals.
#include <gtest/gtest.h>

#include "bench/experiments.h"
#include "src/common/status.h"
#include "src/sched/serve.h"

namespace mcrdl::sched {
namespace {

JobSpec job(std::uint64_t id, const std::string& tenant, JobModel model, int ranks,
            QosClass qos, double arrival_us, int steps = 2) {
  JobSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.model = model;
  spec.ranks = ranks;
  spec.qos = qos;
  spec.arrival_us = arrival_us;
  spec.steps = steps;
  return spec;
}

ServeConfig small_config() {
  ServeConfig config;
  config.system = net::SystemConfig::lassen(4);  // 16 shared ranks
  return config;
}

TEST(Percentile, NearestRank) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(sample, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 50.0), 42.0);
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 0.0), InvalidArgument);
}

TEST(ServeScheduler, ReplayIsDeterministic) {
  TraceConfig trace_config;
  trace_config.num_jobs = 60;
  trace_config.seed = 11;
  const ArrivalTrace trace = generate_trace(trace_config);

  ServeScheduler a(small_config());
  ServeScheduler b(small_config());
  const ServeResult ra = a.run(trace);
  const ServeResult rb = b.run(trace);

  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.p50_latency_us, rb.p50_latency_us);  // bit-identical, not approx
  EXPECT_EQ(ra.p99_latency_us, rb.p99_latency_us);
  EXPECT_EQ(ra.makespan_us, rb.makespan_us);
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
    EXPECT_EQ(ra.jobs[i].spec.id, rb.jobs[i].spec.id);
    EXPECT_EQ(ra.jobs[i].state, rb.jobs[i].state);
    EXPECT_EQ(ra.jobs[i].start_us, rb.jobs[i].start_us);
    EXPECT_EQ(ra.jobs[i].finish_us, rb.jobs[i].finish_us);
  }

  // Replaying the trace's text round trip gives the same replay: the file
  // format loses nothing the scheduler reads.
  ServeScheduler c(small_config());
  const ServeResult rc = c.run(ArrivalTrace::parse(trace.serialize()));
  EXPECT_EQ(ra.p50_latency_us, rc.p50_latency_us);
  EXPECT_EQ(ra.p99_latency_us, rc.p99_latency_us);
}

TEST(ServeScheduler, TailDominatesMedianAndNoDeadlocks) {
  TraceConfig trace_config;
  trace_config.num_jobs = 80;
  trace_config.seed = 5;
  ServeScheduler scheduler(small_config());
  const ServeResult result = scheduler.run(generate_trace(trace_config));

  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.p50_latency_us, 0.0);
  EXPECT_GE(result.p99_latency_us, result.p50_latency_us);
  EXPECT_EQ(result.deadlocks, 0u);
  EXPECT_GT(result.avg_utilization, 0.0);
  // Every job reached a terminal state.
  std::uint64_t terminal = result.completed + result.rejected + result.shed;
  EXPECT_EQ(terminal, result.jobs.size());
}

// Two multi-node jobs sharing the fabric must each run slower than the
// same job alone — the dilation comes from the cost models via
// net::ContentionScale, not from a latency fudge.
TEST(ServeScheduler, ConcurrentJobsContendForTheFabric) {
  ServeConfig config = small_config();
  config.fabric_oversubscription = 4.0;  // tapered core: contention bites
  config.breaker_enabled = false;

  ArrivalTrace solo;
  solo.jobs.push_back(job(0, "tenant-0", JobModel::MoE, 8, QosClass::Gold, 0.0));
  ServeScheduler solo_scheduler(config);
  const ServeResult solo_result = solo_scheduler.run(solo);
  ASSERT_EQ(solo_result.completed, 1u);
  const double solo_service =
      solo_result.jobs[0].finish_us - solo_result.jobs[0].start_us;

  ArrivalTrace pair;
  pair.jobs.push_back(job(0, "tenant-0", JobModel::MoE, 8, QosClass::Gold, 0.0));
  pair.jobs.push_back(job(1, "tenant-1", JobModel::MoE, 8, QosClass::Gold, 0.0));
  ServeScheduler pair_scheduler(config);
  const ServeResult pair_result = pair_scheduler.run(pair);
  ASSERT_EQ(pair_result.completed, 2u);
  EXPECT_GT(pair_result.peak_contention, 1.0);
  for (const JobRecord& record : pair_result.jobs) {
    EXPECT_EQ(record.start_us, 0.0);  // both fit: 2 x 8 ranks on 16
    const double service = record.finish_us - record.start_us;
    EXPECT_GT(service, 1.2 * solo_service)
        << "job " << record.spec.id << " shows no contention dilation";
  }
}

// Under contention the QoS weight buys fabric share: a gold job beats an
// identical bronze job submitted at the same instant.
TEST(ServeScheduler, QosWeightsFavourGoldUnderContention) {
  ServeConfig config = small_config();
  config.fabric_oversubscription = 4.0;
  config.breaker_enabled = false;

  ArrivalTrace trace;
  trace.jobs.push_back(job(0, "gold-tenant", JobModel::MoE, 8, QosClass::Gold, 0.0));
  trace.jobs.push_back(job(1, "bronze-tenant", JobModel::MoE, 8, QosClass::Bronze, 0.0));
  ServeScheduler scheduler(config);
  const ServeResult result = scheduler.run(trace);
  ASSERT_EQ(result.completed, 2u);

  const TenantStats& gold = result.tenants.at("gold-tenant");
  const TenantStats& bronze = result.tenants.at("bronze-tenant");
  EXPECT_LT(gold.p50_latency_us, bronze.p50_latency_us)
      << "gold's 4x bandwidth weight should finish it first";
}

TEST(ServeScheduler, ChaosWindowInflatesTheTail) {
  TraceConfig trace_config;
  trace_config.num_jobs = 60;
  trace_config.seed = 9;
  // Light load on the small world so the clean run is service-dominated —
  // the chaos window's damage then stands out instead of drowning in
  // queueing that was there anyway.
  trace_config.mean_interarrival_us = 400000.0;
  const ArrivalTrace trace = generate_trace(trace_config);
  const double horizon = trace.jobs.back().arrival_us;

  ServeConfig clean_config = small_config();
  ServeScheduler clean(clean_config);
  const ServeResult clean_result = clean.run(trace);

  // Brown out the middle ~30% of the arrivals: enough jobs to own the p99,
  // few enough that the median stays near the clean-fabric service time.
  ServeConfig chaos_config = clean_config;
  chaos_config.chaos.push_back(ChaosWindow{0.35 * horizon, 0.65 * horizon, 8.0});
  ServeScheduler chaotic(chaos_config);
  const ServeResult chaos_result = chaotic.run(trace);

  EXPECT_EQ(chaos_result.deadlocks, 0u);
  EXPECT_GE(chaos_result.p99_latency_us, 1.5 * clean_result.p99_latency_us)
      << "an 8x fabric brown-out over a third of the trace must show in the p99";
  // Recovery: the median is much less inflated than the tail — jobs outside
  // the window are served at clean-fabric speed again.
  EXPECT_LT(chaos_result.p50_latency_us / clean_result.p50_latency_us,
            chaos_result.p99_latency_us / clean_result.p99_latency_us);
}

// A tenant whose jobs keep blowing their SLO trips its breaker: arrivals
// get shed while it is open, and the skip count re-admits a probe later.
TEST(ServeScheduler, BreakerShedsAStrugglingTenant) {
  ServeConfig config = small_config();
  config.fabric_oversubscription = 4.0;
  config.slo_factor = 1.5;  // tight SLO: contended jobs blow it
  config.breaker = fault::BreakerConfig{2, 2, 2};

  // One tenant hammers the cluster with overlapping multi-node jobs, the
  // arrivals spread wide enough that plenty are still inbound after the
  // first SLO misses trip the breaker.
  ArrivalTrace trace;
  for (int i = 0; i < 40; ++i) {
    trace.jobs.push_back(
        job(static_cast<std::uint64_t>(i), "hammer", JobModel::MoE, 8, QosClass::Gold,
            50000.0 * i, 4));
  }
  ServeScheduler scheduler(config);
  const ServeResult result = scheduler.run(trace);

  EXPECT_GT(result.shed, 0u) << "the open breaker never shed an arrival";
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(scheduler.metrics().counter_value(
                "serve_breaker_transitions", {{"tenant", "hammer"}, {"to", "open"}}),
            0u);
  // The shed arrivals are marked distinctly from admission rejects.
  for (const JobRecord& record : result.jobs) {
    if (record.state == JobState::Rejected && record.reject_reason.rfind("shed:", 0) == 0) {
      EXPECT_EQ(record.spec.tenant, "hammer");
    }
  }

  // Same trace with breakers off: nothing is shed.
  ServeConfig no_breaker = config;
  no_breaker.breaker_enabled = false;
  ServeScheduler lenient(no_breaker);
  EXPECT_EQ(lenient.run(trace).shed, 0u);
}

TEST(ServeScheduler, RejectsOversizedAndQueueOverflow) {
  ServeConfig config = small_config();
  ArrivalTrace trace;
  // Bronze quota on 16 ranks is 8: this job is unsatisfiable.
  trace.jobs.push_back(job(0, "big", JobModel::ResNet, 12, QosClass::Bronze, 0.0));
  trace.jobs.push_back(job(1, "ok", JobModel::ResNet, 4, QosClass::Gold, 0.0));
  ServeScheduler scheduler(config);
  const ServeResult result = scheduler.run(trace);
  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.deadlocks, 0u);
  EXPECT_NE(result.jobs[0].reject_reason.find("unsatisfiable"), std::string::npos);
}

// --- capacity dips (DESIGN.md §13, the serving-layer view of grow-back) -----

TEST(ServeScheduler, CapacityDipReservesOnlyFreeNodesAndNeverPreempts) {
  // Job A (2 of 4 nodes) is running when a 2-node dip starts: the dip takes
  // the two *free* nodes and A runs to completion untouched. Job B needs 3
  // nodes — more than ever free while the dip holds 2 — so it must wait for
  // the dip to end (the dip edge is a scheduler event even when the cluster
  // is idle), not deadlock.
  ServeConfig config = small_config();  // 16 ranks, 4 nodes
  config.breaker_enabled = false;
  const double dip_end = 1.0e7;
  config.dips.push_back(CapacityDip{1000.0, dip_end, 2});

  ArrivalTrace trace;
  trace.jobs.push_back(job(0, "steady", JobModel::MoE, 8, QosClass::Gold, 0.0, 4));
  trace.jobs.push_back(job(1, "late", JobModel::ResNet, 12, QosClass::Gold, 100000.0, 2));
  ServeScheduler scheduler(config);
  const ServeResult result = scheduler.run(trace);

  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.deadlocks, 0u);
  EXPECT_EQ(result.jobs[0].state, JobState::Completed);
  EXPECT_LT(result.jobs[0].finish_us, dip_end) << "job A must run *through* the dip";
  EXPECT_GE(result.jobs[1].start_us, dip_end)
      << "job B fits only once the offline nodes return";
  EXPECT_EQ(scheduler.metrics().counter_value("serve_capacity_dips"), 1u);
  EXPECT_EQ(result.unshed_probes, 0u) << "no breaker was open at the dip's end";
}

TEST(ServeScheduler, DipEndUnshedsTenantsViaBreakerProbes) {
  // The hammer tenant trips its SLO breaker during a capacity dip (shed
  // arrivals), and the dip's end grants the open breaker a half-open probe:
  // capacity growing back is what un-sheds the tenant. probe_after_ops is
  // disabled so the dip-end probe is the *only* path out of Open.
  ServeConfig config = small_config();
  config.fabric_oversubscription = 4.0;
  config.slo_factor = 1.5;
  config.breaker = fault::BreakerConfig{2, 2, 0};
  const double dip_end = 1.5e6;
  config.dips.push_back(CapacityDip{0.0, dip_end, 1});

  ArrivalTrace trace;
  for (int i = 0; i < 40; ++i) {
    trace.jobs.push_back(
        job(static_cast<std::uint64_t>(i), "hammer", JobModel::MoE, 8, QosClass::Gold,
            50000.0 * i, 4));
  }
  ServeScheduler scheduler(config);
  const ServeResult result = scheduler.run(trace);

  EXPECT_GT(result.shed, 0u) << "the dip-tightened cluster never tripped the breaker";
  EXPECT_GE(result.unshed_probes, 1u) << "the dip's end granted no probe";
  EXPECT_GE(scheduler.metrics().counter_value("serve_unshed_probes", {{"tenant", "hammer"}}),
            1u);
  // At least one post-dip arrival was admitted again (probe traffic).
  std::uint64_t post_dip_admitted = 0;
  for (const JobRecord& record : result.jobs) {
    if (record.spec.arrival_us <= dip_end) continue;
    if (record.reject_reason.rfind("shed:", 0) != 0) ++post_dip_admitted;
  }
  EXPECT_GE(post_dip_admitted, 1u) << "the tenant stayed shed after capacity grew back";
}

TEST(ServeScheduler, DipReplayIsDeterministic) {
  TraceConfig trace_config;
  trace_config.num_jobs = 60;
  trace_config.seed = 11;
  const ArrivalTrace trace = generate_trace(trace_config);

  ServeConfig config = small_config();
  config.dips.push_back(CapacityDip{200000.0, 900000.0, 2});
  ServeScheduler a(config);
  ServeScheduler b(config);
  const ServeResult ra = a.run(trace);
  const ServeResult rb = b.run(trace);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.unshed_probes, rb.unshed_probes);
  EXPECT_EQ(ra.p50_latency_us, rb.p50_latency_us);  // bit-identical, not approx
  EXPECT_EQ(ra.p99_latency_us, rb.p99_latency_us);
  EXPECT_EQ(ra.makespan_us, rb.makespan_us);
}

TEST(ServeScheduler, DipConfigIsValidated) {
  ServeConfig config = small_config();
  config.dips.push_back(CapacityDip{100.0, 100.0, 1});  // empty window
  EXPECT_THROW(ServeScheduler{config}, InvalidArgument);
  config.dips.back() = CapacityDip{0.0, 100.0, 4};  // the whole cluster
  EXPECT_THROW(ServeScheduler{config}, InvalidArgument);
  config.dips.back() = CapacityDip{0.0, 100.0, 0};
  EXPECT_THROW(ServeScheduler{config}, InvalidArgument);
}

TEST(RunServe, QuickReportIsSchemaShapedAndChaosDegrades) {
  bench::ServeExperimentOptions options;
  options.quick = true;
  const bench::ServeBenchReport report = bench::run_serve(options);

  EXPECT_EQ(report.bench.experiment, "serve");
  ASSERT_GE(report.bench.series.size(), 2u);
  for (const auto& series : report.bench.series) {
    ASSERT_EQ(series.points.size(), 3u) << series.name;
    // The percentile rank rides the bytes axis, strictly increasing.
    EXPECT_LT(series.points[0].bytes, series.points[1].bytes);
    EXPECT_LT(series.points[1].bytes, series.points[2].bytes);
    EXPECT_GT(series.points[0].virtual_us, 0.0);
    EXPECT_LE(series.points[0].virtual_us, series.points[2].virtual_us);
  }
  EXPECT_EQ(report.clean.deadlocks, 0u);
  EXPECT_EQ(report.chaos.deadlocks, 0u);
  EXPECT_GE(report.chaos.p99_latency_us, 1.5 * report.clean.p99_latency_us);
}

}  // namespace
}  // namespace mcrdl::sched
