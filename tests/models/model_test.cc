// Workload-model tests: every model runs end to end through the harness and
// reproduces the paper's qualitative behaviour at reduced scale — comm/compute
// splits (Fig 1), the mixed-backend advantage (Figs 8-10), overlap, and the
// framework adapters (Figs 7/11).
#include <gtest/gtest.h>

#include "src/models/dlrm.h"
#include "src/models/megatron.h"
#include "src/models/moe.h"
#include "src/models/resnet.h"

namespace mcrdl::models {
namespace {

HarnessOptions quick() {
  HarnessOptions o;
  o.warmup_steps = 1;
  o.measured_steps = 2;
  return o;
}

TEST(CommPlanTest, BackendRouting) {
  CommPlan mixed = CommPlan::mcr_dl_mixed();
  EXPECT_EQ(mixed.backend_for(OpType::AllReduce), "nccl");
  EXPECT_EQ(mixed.backend_for(OpType::AllToAllSingle), "mv2-gdr");
  CommPlan pure = CommPlan::pure("sccl");
  EXPECT_EQ(pure.backend_for(OpType::AllToAllSingle), "sccl");
  CommPlan tuned = CommPlan::mcr_dl_tuned();
  EXPECT_EQ(tuned.backend_for(OpType::AllReduce), "auto");
}

TEST(CommPlanTest, BackendsNeeded) {
  CommPlan mixed = CommPlan::mcr_dl_mixed();
  auto needed = mixed.backends_needed(available_backend_names());
  EXPECT_EQ(needed.size(), 2u);
  CommPlan tuned = CommPlan::mcr_dl_tuned();
  EXPECT_EQ(tuned.backends_needed(available_backend_names()).size(), 4u);
}

TEST(FrameworkModelTest, Presets) {
  EXPECT_TRUE(FrameworkModel::mcr_dl().supports_mixed);
  EXPECT_TRUE(FrameworkModel::mcr_dl().supports_fusion);
  EXPECT_FALSE(FrameworkModel::pytorch_distributed("nccl").supports_mixed);
  EXPECT_TRUE(FrameworkModel::mpi4py().host_staging);
  EXPECT_FALSE(FrameworkModel::mpi4py().supports_fusion);
  EXPECT_LT(FrameworkModel::mcr_dl().per_call_overhead_us,
            FrameworkModel::pytorch_distributed("nccl").per_call_overhead_us);
}

TEST(ModelTest, ResNetRunsAndIsComputeDominated) {
  net::SystemConfig sys = net::SystemConfig::lassen(4);  // 16 GPUs
  TrainingHarness harness(sys);
  ResNet50Model model(ResNet50Config{}, sys);
  RunResult r = harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.step_time_us, 0.0);
  EXPECT_GT(r.compute_time_us, 0.0);
  // Paper Fig 1: data-parallel ResNet-50 is strongly compute-dominated.
  EXPECT_LT(r.comm_fraction(), 0.45);
  // Its communication is essentially all Allreduce.
  double ar = r.comm_by_op_us.count("all_reduce") ? r.comm_by_op_us.at("all_reduce") : 0.0;
  double total = 0.0;
  for (auto& [op, t] : r.comm_by_op_us) total += t;
  EXPECT_GT(ar / total, 0.95);
}

TEST(ModelTest, DSMoEHasHeterogeneousCommunication) {
  net::SystemConfig sys = net::SystemConfig::lassen(4);  // 16 GPUs
  TrainingHarness harness(sys);
  DSMoEModel model(DSMoEConfig{}, sys);
  RunResult r = harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  EXPECT_GT(r.throughput, 0.0);
  // Both Allreduce and Alltoall must be material (paper Fig 1b).
  EXPECT_GT(r.comm_by_op_us.at("all_reduce"), 0.0);
  EXPECT_GT(r.comm_by_op_us.at("all_to_all_single"), 0.0);
}

TEST(ModelTest, DSMoECommFractionExceedsResNet) {
  net::SystemConfig sys = net::SystemConfig::lassen(4);
  TrainingHarness harness(sys);
  ResNet50Model resnet(ResNet50Config{}, sys);
  DSMoEModel moe(DSMoEConfig{}, sys);
  RunResult rr = harness.run(resnet, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  RunResult rm = harness.run(moe, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  EXPECT_GT(rm.comm_fraction(), rr.comm_fraction());
}

TEST(ModelTest, MixedPlanBeatsPurePlansForMoEAtScale) {
  net::SystemConfig sys = net::SystemConfig::lassen(16);  // 64 GPUs
  TrainingHarness harness(sys);
  DSMoEModel model(DSMoEConfig{}, sys);
  RunResult nccl = harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  RunResult mv2 = harness.run(model, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), quick());
  RunResult mixed = harness.run(model, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), quick());
  EXPECT_GT(mixed.throughput, nccl.throughput);
  EXPECT_GT(mixed.throughput, mv2.throughput);
}

TEST(ModelTest, DLRMRunsWithNonBlockingOverlap) {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(2);  // 16 GPUs
  TrainingHarness harness(sys);
  DLRMModel model(DLRMConfig{}, sys);
  RunResult r = harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  EXPECT_GT(r.throughput, 0.0);
  // DLRM is communication-heavy (paper Fig 1).
  EXPECT_GT(r.comm_fraction(), 0.3);
  EXPECT_GT(r.comm_by_op_us.at("all_to_all_single"), 0.0);
}

TEST(ModelTest, DLRMMixedBeatsPureAtScale) {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(4);  // 32 GPUs
  TrainingHarness harness(sys);
  DLRMModel model(DLRMConfig{}, sys);
  RunResult nccl = harness.run(model, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  RunResult mv2 = harness.run(model, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), quick());
  RunResult mixed = harness.run(model, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), quick());
  EXPECT_GT(mixed.throughput, nccl.throughput * 0.999);
  EXPECT_GT(mixed.throughput, mv2.throughput * 0.999);
}

TEST(ModelTest, MegatronRunsWithTpAndZero) {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(2);  // 16 GPUs
  TrainingHarness harness(sys);
  MegatronConfig cfg;
  cfg.layers = 8;  // reduced depth for test speed
  MegatronDenseModel model(cfg, sys);
  RunResult r = harness.run(model, CommPlan::pure("sccl"), FrameworkModel::raw(), quick());
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.comm_by_op_us.at("all_reduce"), 0.0);
  EXPECT_GT(r.comm_by_op_us.at("reduce_scatter"), 0.0);
  EXPECT_GT(r.comm_by_op_us.at("all_gather"), 0.0);
}

TEST(ModelTest, ThroughputScalesWithWorldSize) {
  // Weak scaling for DS-MoE: more GPUs -> more global throughput, but below
  // linear (communication grows with scale).
  DSMoEConfig cfg;
  cfg.layers = 8;
  net::SystemConfig small_sys = net::SystemConfig::lassen(2);
  net::SystemConfig big_sys = net::SystemConfig::lassen(8);
  RunResult small = TrainingHarness(small_sys).run(DSMoEModel(cfg, small_sys),
                                                   CommPlan::pure("nccl"),
                                                   FrameworkModel::raw(), quick());
  RunResult big = TrainingHarness(big_sys).run(DSMoEModel(cfg, big_sys), CommPlan::pure("nccl"),
                                               FrameworkModel::raw(), quick());
  EXPECT_GT(big.throughput, small.throughput);
  EXPECT_LT(big.throughput, 4.0 * small.throughput);
  const double eff = scaling_efficiency(big, small);
  EXPECT_GT(eff, 0.3);
  EXPECT_LT(eff, 1.001);
}

TEST(ModelTest, FrameworkOverheadsOrderStepTimes) {
  // Same model, same plan: heavier framework layers => slower steps.
  net::SystemConfig sys = net::SystemConfig::lassen(2);
  TrainingHarness harness(sys);
  DSMoEConfig cfg;
  cfg.layers = 8;
  DSMoEModel model(cfg, sys);
  CommPlan plan = CommPlan::pure("mv2-gdr");
  RunResult raw = harness.run(model, plan, FrameworkModel::raw(), quick());
  RunResult mcr = harness.run(model, plan, FrameworkModel::mcr_dl(), quick());
  RunResult pytd = harness.run(model, plan, FrameworkModel::pytorch_distributed("mv2-gdr"),
                               quick());
  RunResult m4p = harness.run(model, plan, FrameworkModel::mpi4py(), quick());
  EXPECT_LT(raw.step_time_us, mcr.step_time_us);
  EXPECT_LT(mcr.step_time_us, pytd.step_time_us);
  EXPECT_LT(pytd.step_time_us, m4p.step_time_us);  // host staging is worst
}

TEST(ModelTest, TunedPlanMatchesOrBeatsMixedPlan) {
  net::SystemConfig sys = net::SystemConfig::lassen(4);  // 16 GPUs
  // Tune a small grid for the ops DS-MoE uses.
  TuningSuite suite(sys);
  TuningConfig tcfg;
  tcfg.backends = {"nccl", "mv2-gdr"};
  tcfg.ops = {OpType::AllReduce, OpType::AllToAllSingle};
  tcfg.sizes = {64u << 10, 1u << 20, 8u << 20, 32u << 20};
  tcfg.world_sizes = {16};
  tcfg.iterations = 1;
  TuningTable table = suite.generate(tcfg);

  TrainingHarness harness(sys);
  DSMoEConfig cfg;
  cfg.layers = 8;
  DSMoEModel model(cfg, sys);
  RunResult mixed = harness.run(model, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), quick());
  RunResult tuned = harness.run(model, CommPlan::mcr_dl_tuned(), FrameworkModel::raw(), quick(),
                                &table);
  // Fine-grained per-size selection should not lose to the coarse mix.
  EXPECT_GE(tuned.throughput, mixed.throughput * 0.97);
}


TEST(ModelTest, ExpertParallelGroupsShrinkAlltoallScope) {
  // With EP groups confined to one node, the token Alltoall rides NVLink
  // and the step gets faster than world-wide expert parallelism.
  net::SystemConfig sys = net::SystemConfig::lassen(4);  // 16 GPUs
  TrainingHarness h(sys);
  DSMoEConfig world_wide;
  world_wide.layers = 8;
  DSMoEConfig node_local = world_wide;
  node_local.expert_parallel = 4;  // one node per expert group
  RunResult ww = h.run(DSMoEModel(world_wide, sys), CommPlan::pure("nccl"),
                       FrameworkModel::raw(), quick());
  RunResult nl = h.run(DSMoEModel(node_local, sys), CommPlan::pure("nccl"),
                       FrameworkModel::raw(), quick());
  EXPECT_LT(nl.step_time_us, ww.step_time_us);
}

TEST(ModelTest, ExpertParallelMustDivideWorld) {
  net::SystemConfig sys = net::SystemConfig::lassen(1);  // 4 GPUs
  TrainingHarness h(sys);
  DSMoEConfig cfg;
  cfg.layers = 2;
  cfg.expert_parallel = 3;
  DSMoEModel m(cfg, sys);
  EXPECT_THROW(h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), quick()),
               InvalidArgument);
}

}  // namespace
}  // namespace mcrdl::models
