// Tests for the bitstream utilities and the zfp-style fixed-rate codec:
// exact sizes, round-trip error bounds, and edge cases. Rate sweep via
// parameterized tests.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/compress/bitstream.h"
#include "src/compress/zfp_codec.h"

namespace mcrdl::compress {
namespace {

TEST(BitStream, RoundTripMixedWidths) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xABCD, 16);
  w.write(1, 1);
  w.write(0x123456789, 36);
  auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(16), 0xABCDu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(36), 0x123456789u);
}

TEST(BitStream, MasksHighBits) {
  BitWriter w;
  w.write(0xFF, 4);  // only low 4 bits kept
  auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.read(4), 0xFu);
}

TEST(BitStream, SizeIsCeilOfBits) {
  BitWriter w;
  for (int i = 0; i < 3; ++i) w.write(1, 3);  // 9 bits
  EXPECT_EQ(w.bits_written(), 9u);
  EXPECT_EQ(w.finish().size(), 2u);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.write(1, 8);
  auto buf = w.finish();
  BitReader r(buf);
  r.read(8);
  EXPECT_THROW(r.read(1), InvalidArgument);
}

TEST(BitStream, WidthLimitsEnforced) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 58), InvalidArgument);
  EXPECT_THROW(w.write(0, -1), InvalidArgument);
}

TEST(ZfpCodec, InvalidRateRejected) {
  EXPECT_THROW(ZfpCodec(ZfpConfig{3}), InvalidArgument);
  EXPECT_THROW(ZfpCodec(ZfpConfig{29}), InvalidArgument);
}

TEST(ZfpCodec, CompressedSizeIsExactAndRateFixed) {
  ZfpCodec codec(ZfpConfig{8});
  Rng rng(1);
  Tensor t = Tensor::random_uniform({1000}, DType::F32, nullptr, rng, -1.0, 1.0);
  auto buf = codec.compress(t);
  EXPECT_EQ(buf.size(), codec.compressed_bytes(1000));
  // ~(8 + 3) bits per value vs 32-bit floats: ratio just under 3x.
  EXPECT_GT(codec.ratio(DType::F32), 2.5);
  EXPECT_LT(static_cast<double>(buf.size()), 1000.0 * 4 / 2.5);
}

TEST(ZfpCodec, ZeroTensorRoundTripsExactly) {
  ZfpCodec codec(ZfpConfig{8});
  Tensor t = Tensor::zeros({17}, DType::F32, nullptr);
  Tensor out = Tensor::zeros({17}, DType::F32, nullptr);
  codec.decompress(codec.compress(t), out);
  for (int i = 0; i < 17; ++i) EXPECT_DOUBLE_EQ(out.get(i), 0.0);
  // Zero blocks carry no payload beyond the header.
  EXPECT_EQ(codec.compress(t).size(), (5u * 12 + 7) / 8);
}

TEST(ZfpCodec, ConstantBlockReconstructsTightly) {
  ZfpCodec codec(ZfpConfig{12});
  Tensor t = Tensor::full({8}, DType::F64, 3.14159, nullptr);
  Tensor out = Tensor::zeros({8}, DType::F64, nullptr);
  codec.decompress(codec.compress(t), out);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(out.get(i), 3.14159, codec.error_bound(3.14159));
}

TEST(ZfpCodec, NonMultipleOfBlockLength) {
  ZfpCodec codec(ZfpConfig{10});
  Tensor t = Tensor::arange(7, DType::F32, nullptr);
  Tensor out = Tensor::zeros({7}, DType::F32, nullptr);
  codec.decompress(codec.compress(t), out);
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(out.get(i), i, codec.error_bound(6.0));
}

TEST(ZfpCodec, NegativeValues) {
  ZfpCodec codec(ZfpConfig{12});
  Tensor t = Tensor::zeros({4}, DType::F64, nullptr);
  t.set(0, -1.0);
  t.set(1, 0.5);
  t.set(2, -0.25);
  t.set(3, 0.125);
  Tensor out = Tensor::zeros({4}, DType::F64, nullptr);
  codec.decompress(codec.compress(t), out);
  const double bound = codec.error_bound(1.0);
  EXPECT_NEAR(out.get(0), -1.0, bound);
  EXPECT_NEAR(out.get(1), 0.5, bound);
  EXPECT_NEAR(out.get(2), -0.25, bound);
  EXPECT_NEAR(out.get(3), 0.125, bound);
}

TEST(ZfpCodec, RejectsIntegerAndPhantomTensors) {
  ZfpCodec codec;
  Tensor ints = Tensor::zeros({4}, DType::I32, nullptr);
  EXPECT_THROW(codec.compress(ints), InvalidArgument);
  Tensor ph = Tensor::phantom({4}, DType::F32, nullptr);
  EXPECT_THROW(codec.compress(ph), InvalidArgument);
}

TEST(ZfpCodec, LargeMagnitudeRange) {
  ZfpCodec codec(ZfpConfig{16});
  Tensor t = Tensor::zeros({4}, DType::F64, nullptr);
  t.set(0, 1e20);
  t.set(1, -1e20);
  t.set(2, 1e19);
  t.set(3, 0.0);
  Tensor out = Tensor::zeros({4}, DType::F64, nullptr);
  codec.decompress(codec.compress(t), out);
  EXPECT_NEAR(out.get(0), 1e20, codec.error_bound(1e20));
  EXPECT_NEAR(out.get(1), -1e20, codec.error_bound(1e20));
}

// --- rate sweep property test ------------------------------------------------

class ZfpRateTest : public ::testing::TestWithParam<int> {};

TEST_P(ZfpRateTest, RandomDataWithinErrorBound) {
  const int rate = GetParam();
  ZfpCodec codec(ZfpConfig{rate});
  Rng rng(static_cast<std::uint64_t>(rate));
  Tensor t = Tensor::random_uniform({256}, DType::F64, nullptr, rng, -10.0, 10.0);
  Tensor out = Tensor::zeros({256}, DType::F64, nullptr);
  codec.decompress(codec.compress(t), out);
  const double bound = codec.error_bound(10.0);
  for (int i = 0; i < 256; ++i) {
    EXPECT_NEAR(out.get(i), t.get(i), bound) << "rate " << rate << " index " << i;
  }
}

TEST_P(ZfpRateTest, HigherRateNeverIncreasesError) {
  const int rate = GetParam();
  if (rate >= 24) GTEST_SKIP() << "no higher rate to compare against";
  Rng rng(7);
  Tensor t = Tensor::random_uniform({512}, DType::F64, nullptr, rng, -1.0, 1.0);
  auto max_err = [&](int bits) {
    ZfpCodec codec(ZfpConfig{bits});
    Tensor out = Tensor::zeros({512}, DType::F64, nullptr);
    codec.decompress(codec.compress(t), out);
    double worst = 0.0;
    for (int i = 0; i < 512; ++i) worst = std::max(worst, std::abs(out.get(i) - t.get(i)));
    return worst;
  };
  EXPECT_LE(max_err(rate + 4), max_err(rate) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Rates, ZfpRateTest, ::testing::Values(4, 8, 12, 16, 20, 24));

}  // namespace
}  // namespace mcrdl::compress
