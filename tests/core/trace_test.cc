// Tests for the Chrome trace-event exporter.
#include "src/core/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "src/core/mcr_dl.h"
#include "src/obs/json.h"

namespace mcrdl {
namespace {

CommRecord rec(int rank, OpType op, const std::string& backend, SimTime start, SimTime end) {
  CommRecord r;
  r.rank = rank;
  r.op = op;
  r.backend = backend;
  r.bytes = 1024;
  r.start = start;
  r.end = end;
  return r;
}

TEST(Trace, EmptyLoggerIsValidTrace) {
  CommLogger log;
  EXPECT_EQ(to_chrome_trace(log), R"({"displayTimeUnit":"ms","traceEvents":[]})");
}

TEST(Trace, RecordsBecomeCompleteEvents) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 10.0, 25.0));
  log.record(rec(1, OpType::AllToAllSingle, "mv2-gdr", 5.0, 9.0));
  std::string json = to_chrome_trace(log);
  EXPECT_NE(json.find(R"("name":"all_reduce")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("ts":10)"), std::string::npos);
  EXPECT_NE(json.find(R"("dur":15)"), std::string::npos);
  EXPECT_NE(json.find(R"("tid":"mv2-gdr")"), std::string::npos);
  // One metadata event per rank.
  EXPECT_NE(json.find(R"("name":"rank 0")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"rank 1")"), std::string::npos);
}

TEST(Trace, FlagsAppearInArgs) {
  CommLogger log;
  log.set_enabled(true);
  CommRecord r = rec(0, OpType::AllReduce, "nccl", 0.0, 1.0);
  r.fused = true;
  log.record(r);
  EXPECT_NE(to_chrome_trace(log).find(R"("fused":true)"), std::string::npos);
}

TEST(Trace, RetriedOpsGetADistinctColorAndAttemptCount) {
  CommLogger log;
  log.set_enabled(true);
  CommRecord r = rec(0, OpType::AllReduce, "nccl", 0.0, 1.0);
  r.attempts = 3;
  r.fault = "transient";
  log.record(r);
  const std::string json = to_chrome_trace(log);
  EXPECT_NE(json.find(R"("cname":"bad")"), std::string::npos);
  EXPECT_NE(json.find(R"("attempts":3)"), std::string::npos);
  EXPECT_NE(json.find(R"("fault":"transient")"), std::string::npos);
  EXPECT_EQ(json.find(R"("rerouted")"), std::string::npos);
}

TEST(Trace, ReroutedOpsCarryFailoverArgs) {
  CommLogger log;
  log.set_enabled(true);
  CommRecord r = rec(1, OpType::AllReduce, "mv2-gdr", 0.0, 1.0);
  r.attempts = 2;
  r.rerouted = true;
  r.requested_backend = "nccl";
  r.fault = "unavailable";
  log.record(r);
  const std::string json = to_chrome_trace(log);
  // Rerouted beats retried for the color so failover stands out.
  EXPECT_NE(json.find(R"("cname":"terrible")"), std::string::npos);
  EXPECT_EQ(json.find(R"("cname":"bad")"), std::string::npos);
  EXPECT_NE(json.find(R"("rerouted":true)"), std::string::npos);
  EXPECT_NE(json.find(R"("requested_backend":"nccl")"), std::string::npos);
  EXPECT_NE(json.find(R"("fault":"unavailable")"), std::string::npos);
}

TEST(Trace, CleanRecordsCarryNoResilienceArgs) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 0.0, 1.0));
  const std::string json = to_chrome_trace(log);
  EXPECT_EQ(json.find(R"("cname")"), std::string::npos);
  EXPECT_EQ(json.find(R"("attempts")"), std::string::npos);
  EXPECT_EQ(json.find(R"("fault")"), std::string::npos);
}

TEST(Trace, ControlCharactersInStringsAreEscaped) {
  // Regression: fault descriptions and backend names can carry newlines,
  // tabs and quotes; the exporter used to pass control characters through
  // raw, producing JSON that Perfetto (and any strict parser) rejects.
  CommLogger log;
  log.set_enabled(true);
  CommRecord r = rec(0, OpType::AllReduce, "nccl\tfast", 0.0, 1.0);
  r.attempts = 2;
  r.fault = "line1\nline2\r\"quoted\\path\"\x01" "end";
  log.record(r);
  const std::string json = to_chrome_trace(log);

  // No raw control bytes survive in the output.
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_NE(json.find(R"(nccl\tfast)"), std::string::npos);
  EXPECT_NE(json.find(R"(line1\nline2\r\"quoted\\path\"\u0001end)"), std::string::npos);

  // A strict parser accepts the document and round-trips the raw strings.
  const obs::JsonValue doc = obs::parse_json(json);
  const obs::JsonValue& ev = doc.at("traceEvents").array.at(0);
  EXPECT_EQ(ev.at("tid").str, "nccl\tfast");
  EXPECT_EQ(ev.at("args").at("fault").str,
            "line1\nline2\r\"quoted\\path\"\x01" "end");
}

TEST(Trace, ChaosTraceParsesStrictly) {
  // Every exporter code path (clean, retried, rerouted, recovered args and
  // the rank metadata events) must yield strictly valid JSON.
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 0.0, 1.0));
  CommRecord retried = rec(1, OpType::Broadcast, "sccl", 1.0, 2.0);
  retried.attempts = 3;
  retried.fault = "transient";
  log.record(retried);
  CommRecord rerouted = rec(2, OpType::AllGather, "mv2-gdr", 2.0, 3.0);
  rerouted.rerouted = true;
  rerouted.requested_backend = "nccl";
  rerouted.fault = "unavailable";
  log.record(rerouted);
  CommRecord recovered = rec(3, OpType::AllReduce, "ompi", 3.0, 4.0);
  recovered.recovered = true;
  recovered.epoch = 2;
  log.record(recovered);

  const obs::JsonValue doc = obs::parse_json(to_chrome_trace(log));
  const auto& events = doc.at("traceEvents").array;
  // 4 complete events + 4 rank-metadata events.
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(events.at(2).at("args").at("requested_backend").str, "nccl");
  EXPECT_TRUE(events.at(3).at("args").at("recovered").boolean);
}

TEST(Trace, WriteToFileRoundTrips) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::Broadcast, "sccl", 1.0, 2.0));
  const std::string path = ::testing::TempDir() + "/mcrdl_trace_test.json";
  write_chrome_trace(log, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_chrome_trace(log));
  std::remove(path.c_str());
}

TEST(Trace, EndToEndFromARealRun) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.logging_enabled = true;
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({256}, DType::F32, 1.0, cluster.device(rank));
    api.all_reduce("nccl", t);
    Tensor o = Tensor::zeros({256}, DType::F32, cluster.device(rank));
    api.all_to_all_single("mv2-gdr", o, t);
    api.synchronize();
  });
  std::string json = to_chrome_trace(mcr.logger());
  // 2 ops x 4 ranks = 8 complete events.
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = json.find(R"("ph":"X")", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 8u);
}

}  // namespace
}  // namespace mcrdl
