// Tests for Tensor Fusion: size-triggered and timeout-triggered flushes,
// data correctness of pack/slice-back, bypass of large tensors, and the
// cross-backend overlap flush.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

class FusionTest : public ::testing::Test {
 protected:
  void make(FusionConfig cfg) {
    McrDlOptions opts;
    opts.fusion = cfg;
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(1));  // 4 ranks
    mcr_ = std::make_unique<McrDl>(cluster_.get(), opts);
  }
  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<McrDl> mcr_;
};

FusionConfig small_buffer_config() {
  FusionConfig cfg;
  cfg.enabled = true;
  cfg.buffer_bytes = 64;          // tiny: fills after a few tensors
  cfg.flush_timeout_us = 1e6;     // effectively never
  cfg.max_tensor_bytes = 1 << 20;
  return cfg;
}

TEST_F(FusionTest, SizeTriggeredFlushProducesCorrectSums) {
  make(small_buffer_config());
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    std::vector<Tensor> tensors;
    std::vector<Work> works;
    for (int i = 0; i < 8; ++i) {
      tensors.push_back(Tensor::full({4}, DType::F32, i + 1.0, cluster_->device(rank)));
      works.push_back(api.all_reduce("nccl", tensors.back(), ReduceOp::Sum, true));
    }
    api.synchronize();
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(tensors[static_cast<std::size_t>(i)].get(j), 4.0 * (i + 1.0))
            << "tensor " << i;
      }
      EXPECT_TRUE(works[static_cast<std::size_t>(i)]->test());
    }
  });
  EXPECT_GT(mcr_->fusion().flush_count(), 0);
  EXPECT_EQ(mcr_->fusion().fused_tensor_count(), 8 * 4);
}

TEST_F(FusionTest, FusionReducesOperationCount) {
  // 8 small tensors per rank should fuse into far fewer collectives.
  FusionConfig cfg = small_buffer_config();
  cfg.buffer_bytes = 1 << 20;  // everything fits in one buffer
  make(cfg);
  McrDlOptions& opts = mcr_->options();
  opts.logging_enabled = true;
  mcr_->logger().set_enabled(true);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    for (int i = 0; i < 8; ++i) {
      Tensor t = Tensor::full({16}, DType::F32, 1.0, cluster_->device(rank));
      api.all_reduce("nccl", t, ReduceOp::Sum, true);
    }
    api.synchronize();
  });
  // One flush per rank: 4 fused collectives total, not 32.
  EXPECT_EQ(mcr_->fusion().flush_count(), 4);
}

TEST_F(FusionTest, TimeoutTriggersFlush) {
  FusionConfig cfg;
  cfg.enabled = true;
  cfg.buffer_bytes = 1 << 24;  // never fills
  cfg.flush_timeout_us = 25.0;
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    Work w = api.all_reduce("nccl", t, ReduceOp::Sum, true);
    // Do NOT wait on the handle (that would force a flush); just let
    // virtual time pass — the T timeout must flush on its own.
    cluster_->scheduler().sleep_for(500.0);
    EXPECT_TRUE(w->test());
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
  EXPECT_GT(mcr_->fusion().timeout_flush_count(), 0);
}

TEST_F(FusionTest, WaitForcesEarlyFlush) {
  FusionConfig cfg;
  cfg.enabled = true;
  cfg.buffer_bytes = 1 << 24;
  cfg.flush_timeout_us = 1e6;
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 2.0, cluster_->device(rank));
    Work w = api.all_reduce("nccl", t, ReduceOp::Sum, true);
    w->synchronize();  // data dependency forces the flush long before T
    EXPECT_LT(cluster_->scheduler().now(), 1e5);
    EXPECT_DOUBLE_EQ(t.get(0), 8.0);
  });
}

TEST_F(FusionTest, LargeTensorsBypassFusion) {
  FusionConfig cfg = small_buffer_config();
  cfg.max_tensor_bytes = 32;
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor big = Tensor::full({1024}, DType::F32, 1.0, cluster_->device(rank));  // 4 KiB
    api.all_reduce("nccl", big);
    api.synchronize();
    EXPECT_DOUBLE_EQ(big.get(0), 4.0);
  });
  EXPECT_EQ(mcr_->fusion().fused_tensor_count(), 0);
}

TEST_F(FusionTest, MixedDtypesFuseSeparately) {
  FusionConfig cfg = small_buffer_config();
  cfg.buffer_bytes = 1 << 20;
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor f = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    Tensor d = Tensor::full({4}, DType::F64, 2.0, cluster_->device(rank));
    api.all_reduce("nccl", f, ReduceOp::Sum, true);
    api.all_reduce("nccl", d, ReduceOp::Sum, true);
    api.synchronize();
    EXPECT_DOUBLE_EQ(f.get(0), 4.0);
    EXPECT_DOUBLE_EQ(d.get(0), 8.0);
  });
  // Two dtype buffers per rank.
  EXPECT_EQ(mcr_->fusion().flush_count(), 8);
}

TEST_F(FusionTest, CrossBackendOverlapFlushesOtherBackends) {
  FusionConfig cfg;
  cfg.enabled = true;
  cfg.buffer_bytes = 1 << 24;
  cfg.flush_timeout_us = 30.0;
  cfg.cross_backend_overlap = true;
  make(cfg);
  mcr_->init({"nccl", "mv2-gdr"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor a = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    Tensor b = Tensor::full({4}, DType::F32, 2.0, cluster_->device(rank));
    Work wa = api.all_reduce("nccl", a, ReduceOp::Sum, true);
    Work wb = api.all_reduce("mv2-gdr", b, ReduceOp::Sum, true);
    // Let the nccl timeout fire; its overlap rule must flush mv2-gdr too.
    cluster_->scheduler().sleep_for(500.0);
    EXPECT_TRUE(wa->test());
    EXPECT_TRUE(wb->test());
    EXPECT_DOUBLE_EQ(a.get(0), 4.0);
    EXPECT_DOUBLE_EQ(b.get(0), 8.0);
  });
  // The nccl buffer timed out first; the mv2-gdr buffer must have been
  // flushed by the overlap rule, not by its own timer.
  EXPECT_GT(mcr_->fusion().overlap_flush_count(), 0);
}

TEST_F(FusionTest, AvgReductionThroughFusion) {
  FusionConfig cfg = small_buffer_config();
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({4}, DType::F32, rank * 1.0, cluster_->device(rank));
    api.all_reduce("nccl", t, ReduceOp::Avg, true);
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), 1.5);  // mean of 0,1,2,3
  });
}

TEST_F(FusionTest, PhantomTensorsFuseForTiming) {
  FusionConfig cfg = small_buffer_config();
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    for (int i = 0; i < 4; ++i) {
      Tensor t = Tensor::phantom({8}, DType::F32, cluster_->device(rank));
      api.all_reduce("nccl", t, ReduceOp::Sum, true);
    }
    api.synchronize();
    EXPECT_GT(cluster_->scheduler().now(), 0.0);
  });
}

TEST_F(FusionTest, DisabledFusionPassesThrough) {
  FusionConfig cfg;  // disabled
  make(cfg);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    api.all_reduce("nccl", t);
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
  EXPECT_EQ(mcr_->fusion().flush_count(), 0);
}

}  // namespace
}  // namespace mcrdl
