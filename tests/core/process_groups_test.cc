// Tests for the hybrid-parallel process-group helpers.
#include "src/core/process_groups.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

TEST(ProcessGroups, TensorParallelGroupsAreContiguous) {
  ProcessGroups pg(8, /*tp=*/2);
  EXPECT_EQ(pg.tp_group(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(pg.tp_group(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(pg.tp_group(6), (std::vector<int>{6, 7}));
  EXPECT_EQ(pg.data_parallel(), 4);
}

TEST(ProcessGroups, DataParallelGroupsStrideByTp) {
  ProcessGroups pg(8, 2);
  EXPECT_EQ(pg.dp_group(0), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(pg.dp_group(3), (std::vector<int>{1, 3, 5, 7}));
}

TEST(ProcessGroups, ExpertParallelSlicesTheDpDimension) {
  ProcessGroups pg(8, /*tp=*/2, /*ep=*/2);
  EXPECT_EQ(pg.ep_group(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(pg.ep_group(4), (std::vector<int>{4, 6}));
  EXPECT_EQ(pg.ep_group(7), (std::vector<int>{5, 7}));
}

TEST(ProcessGroups, GroupsPartitionTheWorld) {
  ProcessGroups pg(16, 4);
  std::set<int> seen;
  for (const auto& g : pg.all_tp_groups()) {
    for (int r : g) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(seen.size(), 16u);
  seen.clear();
  for (const auto& g : pg.all_dp_groups()) {
    for (int r : g) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(ProcessGroups, EveryRankBelongsToItsOwnGroups) {
  ProcessGroups pg(16, 4, 2);
  for (int r = 0; r < 16; ++r) {
    auto tp = pg.tp_group(r);
    auto dp = pg.dp_group(r);
    auto ep = pg.ep_group(r);
    EXPECT_NE(std::find(tp.begin(), tp.end(), r), tp.end());
    EXPECT_NE(std::find(dp.begin(), dp.end(), r), dp.end());
    EXPECT_NE(std::find(ep.begin(), ep.end(), r), ep.end());
  }
}

TEST(ProcessGroups, InvalidConfigurationsRejected) {
  EXPECT_THROW(ProcessGroups(8, 3), InvalidArgument);      // 8 % 3 != 0
  EXPECT_THROW(ProcessGroups(8, 2, 3), InvalidArgument);   // dp 4 % 3 != 0
  EXPECT_THROW(ProcessGroups(0, 1), InvalidArgument);
  ProcessGroups pg(8, 2);
  EXPECT_THROW(pg.tp_group(8), InvalidArgument);
  EXPECT_THROW(pg.dp_group(-1), InvalidArgument);
}

TEST(ProcessGroups, DriveRealCollectivesPerGroup) {
  // TP allreduce within pairs + DP allreduce across them — the Megatron
  // pattern — built from the helpers, verified for data correctness.
  ClusterContext cluster(net::SystemConfig::lassen(2));  // 8 ranks
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  ProcessGroups pg(8, 2);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Api tp = api.group(pg.tp_group(rank));
    Api dp = api.group(pg.dp_group(rank));
    Tensor t = Tensor::full({2}, DType::F32, 1.0, cluster.device(rank));
    tp.all_reduce("mv2-gdr", t);       // 1+1 = 2 within the pair
    dp.all_reduce("mv2-gdr", t);       // 2*4 = 8 across the DP group
    EXPECT_DOUBLE_EQ(t.get(0), 8.0);
  });
}

}  // namespace
}  // namespace mcrdl
