// Tests for the hybrid-parallel process-group helpers.
#include "src/core/process_groups.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

TEST(ProcessGroups, TensorParallelGroupsAreContiguous) {
  ProcessGroups pg(8, /*tp=*/2);
  EXPECT_EQ(pg.tp_group(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(pg.tp_group(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(pg.tp_group(6), (std::vector<int>{6, 7}));
  EXPECT_EQ(pg.data_parallel(), 4);
}

TEST(ProcessGroups, DataParallelGroupsStrideByTp) {
  ProcessGroups pg(8, 2);
  EXPECT_EQ(pg.dp_group(0), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(pg.dp_group(3), (std::vector<int>{1, 3, 5, 7}));
}

TEST(ProcessGroups, ExpertParallelSlicesTheDpDimension) {
  ProcessGroups pg(8, /*tp=*/2, /*ep=*/2);
  EXPECT_EQ(pg.ep_group(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(pg.ep_group(4), (std::vector<int>{4, 6}));
  EXPECT_EQ(pg.ep_group(7), (std::vector<int>{5, 7}));
}

TEST(ProcessGroups, GroupsPartitionTheWorld) {
  ProcessGroups pg(16, 4);
  std::set<int> seen;
  for (const auto& g : pg.all_tp_groups()) {
    for (int r : g) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(seen.size(), 16u);
  seen.clear();
  for (const auto& g : pg.all_dp_groups()) {
    for (int r : g) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(ProcessGroups, EveryRankBelongsToItsOwnGroups) {
  ProcessGroups pg(16, 4, 2);
  for (int r = 0; r < 16; ++r) {
    auto tp = pg.tp_group(r);
    auto dp = pg.dp_group(r);
    auto ep = pg.ep_group(r);
    EXPECT_NE(std::find(tp.begin(), tp.end(), r), tp.end());
    EXPECT_NE(std::find(dp.begin(), dp.end(), r), dp.end());
    EXPECT_NE(std::find(ep.begin(), ep.end(), r), ep.end());
  }
}

TEST(ProcessGroups, InvalidConfigurationsRejected) {
  EXPECT_THROW(ProcessGroups(8, 3), InvalidArgument);      // 8 % 3 != 0
  EXPECT_THROW(ProcessGroups(8, 2, 3), InvalidArgument);   // dp 4 % 3 != 0
  EXPECT_THROW(ProcessGroups(0, 1), InvalidArgument);
  ProcessGroups pg(8, 2);
  EXPECT_THROW(pg.tp_group(8), InvalidArgument);
  EXPECT_THROW(pg.dp_group(-1), InvalidArgument);
}

TEST(ShrinkProcessGroups, PreservesTpWhenTheNewWorldStillDivides) {
  // 8 ranks, tp=2. Losing a whole TP pair (ranks 4,5) keeps the TP degree.
  ProcessGroups pg(8, 2);
  const ShrunkGroups s = shrink_process_groups(pg, {4, 5});
  EXPECT_EQ(s.groups.world(), 6);
  EXPECT_EQ(s.groups.tensor_parallel(), 2);
  EXPECT_TRUE(s.tp_preserved);
  EXPECT_EQ(s.survivors, (std::vector<int>{0, 1, 2, 3, 6, 7}));
  EXPECT_EQ(s.old_to_new, (std::vector<int>{0, 1, 2, 3, -1, -1, 4, 5}));
}

TEST(ShrinkProcessGroups, CollapsesTpWhenALossTearsABlock) {
  // Losing one rank of a TP pair leaves 7 survivors: 7 % 2 != 0, so TP
  // collapses to 1 and every survivor becomes data-parallel.
  ProcessGroups pg(8, 2);
  const ShrunkGroups s = shrink_process_groups(pg, {3});
  EXPECT_EQ(s.groups.world(), 7);
  EXPECT_EQ(s.groups.tensor_parallel(), 1);
  EXPECT_FALSE(s.tp_preserved);
  EXPECT_EQ(s.groups.data_parallel(), 7);
  EXPECT_EQ(s.old_to_new[3], -1);
  EXPECT_EQ(s.old_to_new[7], 6);
}

TEST(ShrinkProcessGroups, CollapsesEpAgainstTheNewDpDegree) {
  // 16 ranks, tp=4, ep=2 (dp=4). Losing one TP block of 4 leaves dp=3,
  // which 2 does not divide: EP collapses while TP survives.
  ProcessGroups pg(16, 4, 2);
  const ShrunkGroups s = shrink_process_groups(pg, {8, 9, 10, 11});
  EXPECT_EQ(s.groups.world(), 12);
  EXPECT_EQ(s.groups.tensor_parallel(), 4);
  EXPECT_TRUE(s.tp_preserved);
  EXPECT_EQ(s.groups.expert_parallel(), 1);
  EXPECT_FALSE(s.ep_preserved);
}

TEST(ShrinkProcessGroups, RejectsTotalLossAndOutOfRangeRanks) {
  ProcessGroups pg(2, 1);
  EXPECT_THROW(shrink_process_groups(pg, {0, 1}), InvalidArgument);
  EXPECT_THROW(shrink_process_groups(pg, {2}), InvalidArgument);
  // Duplicate losses are tolerated (a rank can only die once).
  const ShrunkGroups s = shrink_process_groups(pg, {1, 1});
  EXPECT_EQ(s.survivors, (std::vector<int>{0}));
}

TEST(RebuildProcessGroups, EmptyLostSetRestoresTheSeedLayoutExactly) {
  // The grow-path entry point: after a full rejoin the rebuilt layout must
  // be byte-for-byte the original — identity mapping, every dimension
  // preserved — not an approximation recovered through intermediate shrinks.
  ProcessGroups pg(16, 4, 2);
  const ShrunkGroups s = rebuild_process_groups(pg, {});
  EXPECT_EQ(s.groups.world(), 16);
  EXPECT_EQ(s.groups.tensor_parallel(), 4);
  EXPECT_EQ(s.groups.expert_parallel(), 2);
  EXPECT_TRUE(s.tp_preserved);
  EXPECT_TRUE(s.ep_preserved);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(s.survivors[static_cast<std::size_t>(r)], r);
    EXPECT_EQ(s.old_to_new[static_cast<std::size_t>(r)], r);
    EXPECT_EQ(s.groups.tp_group(r), pg.tp_group(r));
    EXPECT_EQ(s.groups.dp_group(r), pg.dp_group(r));
    EXPECT_EQ(s.groups.ep_group(r), pg.ep_group(r));
  }
}

TEST(RebuildProcessGroups, PartialLostSetMatchesShrinkFromTheOriginal) {
  // A rebuild over a still-lost subset is exactly a shrink from the seed
  // layout — partial grow-back composes through the original world, never
  // through the last shrunk layout.
  ProcessGroups pg(8, 2);
  const ShrunkGroups rebuilt = rebuild_process_groups(pg, {4, 5});
  const ShrunkGroups shrunk = shrink_process_groups(pg, {4, 5});
  EXPECT_EQ(rebuilt.survivors, shrunk.survivors);
  EXPECT_EQ(rebuilt.old_to_new, shrunk.old_to_new);
  EXPECT_EQ(rebuilt.groups.world(), shrunk.groups.world());
  EXPECT_EQ(rebuilt.groups.tensor_parallel(), shrunk.groups.tensor_parallel());
  EXPECT_EQ(rebuilt.tp_preserved, shrunk.tp_preserved);
}

TEST(ProcessGroups, DriveRealCollectivesPerGroup) {
  // TP allreduce within pairs + DP allreduce across them — the Megatron
  // pattern — built from the helpers, verified for data correctness.
  ClusterContext cluster(net::SystemConfig::lassen(2));  // 8 ranks
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  ProcessGroups pg(8, 2);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Api tp = api.group(pg.tp_group(rank));
    Api dp = api.group(pg.dp_group(rank));
    Tensor t = Tensor::full({2}, DType::F32, 1.0, cluster.device(rank));
    tp.all_reduce("mv2-gdr", t);       // 1+1 = 2 within the pair
    dp.all_reduce("mv2-gdr", t);       // 2*4 = 8 across the DP group
    EXPECT_DOUBLE_EQ(t.get(0), 8.0);
  });
}

}  // namespace
}  // namespace mcrdl
