// Tests for the communication-compression hook: routing, lossy data
// round-trips within the codec's error bound, timing benefit, and replica
// consistency after compressed broadcast.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

class CompressionHookTest : public ::testing::Test {
 protected:
  void make(CompressionConfig cfg) {
    McrDlOptions opts;
    opts.compression = cfg;
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(1));  // 4 ranks
    mcr_ = std::make_unique<McrDl>(cluster_.get(), opts);
  }
  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<McrDl> mcr_;
};

CompressionConfig on_config(std::size_t min_bytes = 0) {
  CompressionConfig cfg;
  cfg.enabled = true;
  cfg.min_bytes = min_bytes;
  cfg.codec.bits_per_value = 14;
  return cfg;
}

TEST_F(CompressionHookTest, BroadcastRoundTripsWithinBound) {
  make(on_config());
  mcr_->init({"nccl"});
  compress::ZfpCodec codec(mcr_->compression().config().codec);
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::zeros({64}, DType::F32, cluster_->device(rank));
    if (rank == 0) {
      for (int i = 0; i < 64; ++i) t.set(i, 0.01 * i - 0.3);
    }
    api.broadcast("nccl", t, 0);
    api.synchronize();
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(t.get(i), 0.01 * i - 0.3, codec.error_bound(0.34)) << i;
    }
  });
  EXPECT_GT(mcr_->compression().compressed_op_count(), 0);
}

TEST_F(CompressionHookTest, BroadcastLeavesReplicasBitwiseConsistent) {
  // All ranks (including the root) must adopt the lossy values.
  make(on_config());
  mcr_->init({"nccl"});
  std::vector<std::vector<double>> results(4);
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::zeros({16}, DType::F32, cluster_->device(rank));
    if (rank == 0) {
      for (int i = 0; i < 16; ++i) t.set(i, 1.0 / (i + 3));
    }
    api.broadcast("nccl", t, 0);
    api.synchronize();
    results[static_cast<std::size_t>(rank)] = t.to_vector();
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(results[0], results[static_cast<std::size_t>(r)]);
}

TEST_F(CompressionHookTest, AllGatherCompressedRoundTrip) {
  make(on_config());
  mcr_->init({"nccl"});
  compress::ZfpCodec codec(mcr_->compression().config().codec);
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor in = Tensor::full({32}, DType::F32, 0.1 * (rank + 1), cluster_->device(rank));
    Tensor out = Tensor::zeros({128}, DType::F32, cluster_->device(rank));
    api.all_gather("nccl", out, in);
    api.synchronize();
    for (int r = 0; r < 4; ++r) {
      EXPECT_NEAR(out.get(32 * r), 0.1 * (r + 1), codec.error_bound(0.4));
    }
  });
}

TEST_F(CompressionHookTest, AllToAllSingleCompressedRoundTrip) {
  make(on_config());
  mcr_->init({"mv2-gdr"});
  compress::ZfpCodec codec(mcr_->compression().config().codec);
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor in = Tensor::zeros({32}, DType::F32, cluster_->device(rank));
    for (int i = 0; i < 32; ++i) in.set(i, rank + 0.01 * i);
    Tensor out = Tensor::zeros({32}, DType::F32, cluster_->device(rank));
    api.all_to_all_single("mv2-gdr", out, in);
    api.synchronize();
    for (int src = 0; src < 4; ++src) {
      EXPECT_NEAR(out.get(8 * src), src + 0.01 * (8 * rank), codec.error_bound(4.0));
    }
  });
}

TEST_F(CompressionHookTest, SmallMessagesSkipCompression) {
  make(on_config(/*min_bytes=*/1 << 20));
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = rank == 0 ? Tensor::full({16}, DType::F32, 2.0, cluster_->device(rank))
                         : Tensor::zeros({16}, DType::F32, cluster_->device(rank));
    api.broadcast("nccl", t, 0);
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), 2.0);  // exact: no lossy path
  });
  EXPECT_EQ(mcr_->compression().compressed_op_count(), 0);
}

TEST_F(CompressionHookTest, IntegerTensorsSkipCompression) {
  make(on_config());
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = rank == 0 ? Tensor::arange(16, DType::I64, cluster_->device(rank))
                         : Tensor::zeros({16}, DType::I64, cluster_->device(rank));
    api.broadcast("nccl", t, 0);
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(15), 15.0);
  });
  EXPECT_EQ(mcr_->compression().compressed_op_count(), 0);
}

TEST_F(CompressionHookTest, ReducesVirtualCommunicationTime) {
  // Phantom payloads: compression shrinks wire bytes ~2.7x at 10 bits.
  auto run_once = [&](bool enabled) {
    CompressionConfig cfg;
    cfg.enabled = enabled;
    cfg.min_bytes = 0;
    cfg.codec.bits_per_value = 8;
    McrDlOptions opts;
    opts.compression = cfg;
    ClusterContext cluster(net::SystemConfig::lassen(4));  // 16 ranks
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    SimTime elapsed = 0.0;
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor in = Tensor::phantom({1 << 20}, DType::F32, cluster.device(rank));
      Tensor out = Tensor::phantom({1 << 24}, DType::F32, cluster.device(rank));
      api.all_gather("nccl", out, in);
      api.synchronize();
      if (rank == 0) elapsed = cluster.scheduler().now();
    });
    return elapsed;
  };
  EXPECT_LT(run_once(true), run_once(false) * 0.7);
}

}  // namespace
}  // namespace mcrdl
