// Dedicated tests for the op-emulation layer: data correctness of every
// recipe against a backend lacking the op, the emulation performance tax
// the paper describes, and async behaviour of composite emulated ops.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

class EmulationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(1));  // 4 ranks
    nccl_ = make_backend("nccl", cluster_.get());
    nccl_->init();
  }
  Comm& world() { return *nccl_->world(); }

  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<Backend> nccl_;
};

TEST_F(EmulationTest, GatherViaAllGather) {
  cluster_->run_spmd([&](int rank) {
    Tensor in = Tensor::full({2}, DType::F32, rank + 1.0, cluster_->device(rank));
    Tensor out = rank == 2 ? Tensor::zeros({8}, DType::F32, cluster_->device(rank)) : Tensor();
    emulation::gather(world(), rank, out, in, /*root=*/2, /*async_op=*/false);
    if (rank == 2) {
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(out.get(2 * r), r + 1.0);
        EXPECT_DOUBLE_EQ(out.get(2 * r + 1), r + 1.0);
      }
    }
  });
}

TEST_F(EmulationTest, ScatterViaBroadcast) {
  cluster_->run_spmd([&](int rank) {
    Tensor in = rank == 1 ? Tensor::arange(8, DType::F32, cluster_->device(rank)) : Tensor();
    Tensor out = Tensor::zeros({2}, DType::F32, cluster_->device(rank));
    emulation::scatter(world(), rank, out, in, /*root=*/1, false);
    EXPECT_DOUBLE_EQ(out.get(0), 2.0 * rank);
    EXPECT_DOUBLE_EQ(out.get(1), 2.0 * rank + 1);
  });
}

TEST_F(EmulationTest, GathervViaP2p) {
  cluster_->run_spmd([&](int rank) {
    Tensor in = Tensor::full({rank + 1}, DType::F32, 10.0 + rank, cluster_->device(rank));
    std::vector<int> counts = {1, 2, 3, 4}, displs = {0, 1, 3, 6};
    Tensor out = rank == 0 ? Tensor::zeros({10}, DType::F32, cluster_->device(rank)) : Tensor();
    emulation::gatherv(world(), rank, out, in, 0, counts, displs, false);
    nccl_->synchronize(rank);
    if (rank == 0) {
      EXPECT_DOUBLE_EQ(out.get(0), 10.0);
      EXPECT_DOUBLE_EQ(out.get(2), 11.0);
      EXPECT_DOUBLE_EQ(out.get(9), 13.0);
    }
  });
}

TEST_F(EmulationTest, ScattervViaP2p) {
  cluster_->run_spmd([&](int rank) {
    std::vector<int> counts = {1, 2, 3, 4}, displs = {0, 1, 3, 6};
    Tensor in = rank == 3 ? Tensor::arange(10, DType::F32, cluster_->device(rank)) : Tensor();
    Tensor out = Tensor::zeros({rank + 1}, DType::F32, cluster_->device(rank));
    emulation::scatterv(world(), rank, out, in, 3, counts, displs, false);
    nccl_->synchronize(rank);
    EXPECT_DOUBLE_EQ(out.get(0), displs[static_cast<std::size_t>(rank)]);
    EXPECT_DOUBLE_EQ(out.get(rank), displs[static_cast<std::size_t>(rank)] + rank);
  });
}

TEST_F(EmulationTest, AllGathervViaPadding) {
  cluster_->run_spmd([&](int rank) {
    Tensor in = Tensor::full({4 - rank}, DType::F32, rank * 1.0, cluster_->device(rank));
    std::vector<int> counts = {4, 3, 2, 1}, displs = {0, 4, 7, 9};
    Tensor out = Tensor::zeros({10}, DType::F32, cluster_->device(rank));
    emulation::all_gatherv(world(), rank, out, in, counts, displs, false);
    EXPECT_DOUBLE_EQ(out.get(0), 0.0);
    EXPECT_DOUBLE_EQ(out.get(4), 1.0);
    EXPECT_DOUBLE_EQ(out.get(7), 2.0);
    EXPECT_DOUBLE_EQ(out.get(9), 3.0);
  });
}

TEST_F(EmulationTest, AllToAllvViaPaddedExchange) {
  cluster_->run_spmd([&](int rank) {
    // Rank r sends 1 element of value r*10+d to each destination d.
    std::vector<int> ones = {1, 1, 1, 1}, displs = {0, 1, 2, 3};
    Tensor in = Tensor::zeros({4}, DType::F32, cluster_->device(rank));
    for (int d = 0; d < 4; ++d) in.set(d, rank * 10.0 + d);
    Tensor out = Tensor::zeros({4}, DType::F32, cluster_->device(rank));
    emulation::all_to_allv(world(), rank, out, in, ones, displs, ones, displs, false);
    for (int s = 0; s < 4; ++s) EXPECT_DOUBLE_EQ(out.get(s), s * 10.0 + rank);
  });
}

TEST_F(EmulationTest, AsyncEmulatedOpCompletesThroughHandle) {
  cluster_->run_spmd([&](int rank) {
    Tensor in = Tensor::full({2}, DType::F32, 1.0, cluster_->device(rank));
    Tensor out = rank == 0 ? Tensor::zeros({8}, DType::F32, cluster_->device(rank)) : Tensor();
    Work w = emulation::gather(world(), rank, out, in, 0, /*async_op=*/true);
    w->synchronize();
    EXPECT_TRUE(w->test());
    if (rank == 0) {
      EXPECT_DOUBLE_EQ(out.get(7), 1.0);
    }
  });
}

TEST_F(EmulationTest, EmulationCostsMoreThanNativeOnMpi) {
  // Paper Section I-C "Option 1 sacrifices performance": NCCL's emulated
  // gather (via a full all_gather) must take longer than MVAPICH2-GDR's
  // native binomial gather for the same payload.
  auto time_gather = [&](const std::string& backend_name) {
    ClusterContext cluster(net::SystemConfig::lassen(4));  // 16 ranks
    McrDl mcr(&cluster);
    mcr.init({backend_name});
    double t = 0.0;
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor in = Tensor::phantom({1 << 18}, DType::F32, cluster.device(rank));  // 1 MiB
      Tensor out =
          rank == 0 ? Tensor::phantom({16 << 18}, DType::F32, cluster.device(rank)) : Tensor();
      api.gather(backend_name, out, in, 0, false);
      api.synchronize();
      if (rank == 0) t = cluster.scheduler().now();
    });
    return t;
  };
  // Emulation moves size()x the data of a binomial gather; NCCL's fast
  // all_gather absorbs some of that, but the tax must still be visible.
  EXPECT_GT(time_gather("nccl"), time_gather("mv2-gdr") * 1.1);
}

TEST(CompositeWorkTest, EmptyCompositeIsImmediatelyDone) {
  sim::Scheduler sched;
  sched.spawn("a", [&] {
    bool finalized = false;
    Work w = make_composite(&sched, {}, [&] { finalized = true; });
    EXPECT_TRUE(w->test());
    EXPECT_TRUE(finalized);
    w->wait();  // must not block
  });
  sched.run();
}

TEST(CompositeWorkTest, FinalizeRunsOnceAfterAllParts) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  auto backend = make_backend("mv2-gdr", &cluster);
  backend->init();
  int finalize_count = 0;
  cluster.run_spmd([&](int rank) {
    Tensor a = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
    Tensor b = Tensor::full({4}, DType::F32, 2.0, cluster.device(rank));
    Work w1 = backend->world()->all_reduce(rank, a, ReduceOp::Sum, true);
    Work w2 = backend->world()->all_reduce(rank, b, ReduceOp::Sum, true);
    Work composite = make_composite(&cluster.scheduler(), {w1, w2}, [&] {
      if (rank == 0) ++finalize_count;
      // Both parts' data must be visible here.
      EXPECT_DOUBLE_EQ(a.get(0), 4.0);
      EXPECT_DOUBLE_EQ(b.get(0), 8.0);
    });
    composite->synchronize();
    EXPECT_TRUE(composite->test());
  });
  EXPECT_EQ(finalize_count, 1);
}

TEST(CompositeWorkTest, OnCompleteAfterDoneFiresImmediately) {
  sim::Scheduler sched;
  sched.spawn("a", [&] {
    Work w = make_composite(&sched, {});
    bool fired = false;
    w->on_complete([&] { fired = true; });
    EXPECT_TRUE(fired);
  });
  sched.run();
}

}  // namespace
}  // namespace mcrdl
