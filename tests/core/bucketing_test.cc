// Tests for the generalized gradient-bucketing layer (DESIGN.md §14):
// admission beyond AllReduce (Reduce, Broadcast), slice-back ordering and
// data correctness, timeout-vs-size flush races, and the flush-timer
// cancellation that keeps the scheduler's event queue from growing without
// bound on bucket-heavy workloads. Every behavioural test runs on both
// engines (serial baton and 4-shard parallel) — bucketing decisions must be
// an execution-invariant property of the workload.
#include <gtest/gtest.h>

#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

std::vector<sim::ExecutionConfig> engines() {
  return {sim::ExecutionConfig::serial(), sim::ExecutionConfig::parallel(4)};
}

std::string canonical_records(const CommLogger& logger) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  for (const CommRecord& r : logger.records()) {
    os << r.rank << '|' << op_name(r.op) << '|' << r.backend << '|' << r.bytes << '|' << r.start
       << '|' << r.end << '|' << (r.fused ? 'F' : '.') << '\n';
  }
  return os.str();
}

FusionConfig bucket_all_config() {
  FusionConfig cfg;
  cfg.enabled = true;
  cfg.buffer_bytes = 1 << 20;   // flush by timeout/sync, not size
  cfg.flush_timeout_us = 1e6;   // effectively never
  cfg.max_tensor_bytes = 1 << 20;
  cfg.ops = {OpType::AllReduce, OpType::Reduce, OpType::Broadcast};
  return cfg;
}

// A small mixed workload of bucketable collectives; returns its trace.
std::string run_mixed_workload(const FusionConfig& fusion, const sim::ExecutionConfig& exec) {
  McrDlOptions opts;
  opts.fusion = fusion;
  opts.logging_enabled = true;
  ClusterContext cluster(net::SystemConfig::lassen(1), exec);  // 4 ranks
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    for (int i = 0; i < 4; ++i) {
      Tensor t = Tensor::full({8}, DType::F32, i + 1.0, dev);
      api.all_reduce("nccl", t, ReduceOp::Sum, /*async_op=*/true);
    }
    Tensor r = Tensor::full({8}, DType::F32, 2.0, dev);
    api.reduce("nccl", r, /*root=*/1, ReduceOp::Sum, /*async_op=*/true);
    Tensor b = rank == 0 ? Tensor::full({8}, DType::F32, 7.0, dev)
                         : Tensor::zeros({8}, DType::F32, dev);
    api.broadcast("nccl", b, /*root=*/0, /*async_op=*/true);
    api.synchronize();
  });
  return canonical_records(mcr.logger());
}

// With bucketing disabled, a config that *lists* the extra bucketable ops
// must be byte-identical to the default config: admission is dead code until
// `enabled` flips, on either engine.
TEST(Bucketing, DisabledBucketingIsByteIdenticalToDefault) {
  for (const auto& exec : engines()) {
    FusionConfig listed = bucket_all_config();
    listed.enabled = false;
    FusionConfig dflt;  // enabled=false, ops={AllReduce}
    EXPECT_EQ(run_mixed_workload(listed, exec), run_mixed_workload(dflt, exec))
        << "engine: " << exec.describe();
    // And the plan compiler agrees: no fusion stage in any op's fast path.
    McrDlOptions opts;
    opts.fusion = listed;
    ClusterContext cluster(net::SystemConfig::lassen(1), exec);
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    for (OpType op : {OpType::AllReduce, OpType::Reduce, OpType::Broadcast}) {
      for (const auto& name : mcr.pipeline().active_stage_names(op)) {
        EXPECT_NE(name, "fusion") << op_name(op);
      }
    }
  }
}

// Enabled bucketing of every admitted op: each tensor must get exactly its
// own slice back, in submission order, with correct collective semantics —
// AllReduce sums across ranks, Reduce sums at the root and leaves non-root
// inputs untouched (as the unbucketed op would), Broadcast propagates the
// root's distinct per-tensor values.
TEST(Bucketing, SliceBackOrderingAndSemanticsPerOp) {
  for (const auto& exec : engines()) {
    McrDlOptions opts;
    opts.fusion = bucket_all_config();
    ClusterContext cluster(net::SystemConfig::lassen(1), exec);
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);

      std::vector<Tensor> ar, rd, bc;
      for (int i = 0; i < 6; ++i) {
        ar.push_back(Tensor::full({4}, DType::F32, rank + 10.0 * i, dev));
        api.all_reduce("nccl", ar.back(), ReduceOp::Sum, true);
      }
      for (int i = 0; i < 6; ++i) {
        rd.push_back(Tensor::full({4}, DType::F32, 1.0 + i, dev));
        api.reduce("nccl", rd.back(), /*root=*/2, ReduceOp::Sum, true);
      }
      for (int i = 0; i < 6; ++i) {
        bc.push_back(rank == 1 ? Tensor::full({4}, DType::F32, 100.0 + i, dev)
                               : Tensor::zeros({4}, DType::F32, dev));
        api.broadcast("nccl", bc.back(), /*root=*/1, true);
      }
      api.synchronize();

      const int n = cluster.world_size();
      for (int i = 0; i < 6; ++i) {
        // sum over ranks of (rank + 10i) = (0+1+2+3) + n*10i
        EXPECT_DOUBLE_EQ(ar[static_cast<std::size_t>(i)].get(0), 6.0 + n * 10.0 * i)
            << "all_reduce slice " << i;
        if (rank == 2) {
          EXPECT_DOUBLE_EQ(rd[static_cast<std::size_t>(i)].get(0), n * (1.0 + i))
              << "reduce slice " << i << " at root";
        } else {
          EXPECT_DOUBLE_EQ(rd[static_cast<std::size_t>(i)].get(0), 1.0 + i)
              << "reduce slice " << i << " must stay the local input off-root";
        }
        EXPECT_DOUBLE_EQ(bc[static_cast<std::size_t>(i)].get(3), 100.0 + i)
            << "broadcast slice " << i;
      }
    });
    // One bucket per (rank, op[, root]): 4 ranks x 3 ops = 12 flushes, and
    // every tensor went through a bucket.
    EXPECT_EQ(mcr.fusion().flush_count(), 12) << exec.describe();
    EXPECT_EQ(mcr.fusion().fused_tensor_count(), 4 * 18) << exec.describe();
  }
}

// Rooted ops with different roots must never coalesce into one bucket: the
// fused collective is a single issue with a single root.
TEST(Bucketing, DistinctRootsNeverCoalesce) {
  for (const auto& exec : engines()) {
    McrDlOptions opts;
    opts.fusion = bucket_all_config();
    ClusterContext cluster(net::SystemConfig::lassen(1), exec);
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      std::vector<Tensor> bcs;
      for (int root = 0; root < 4; ++root) {
        bcs.push_back(rank == root ? Tensor::full({4}, DType::F32, root + 50.0, dev)
                                   : Tensor::zeros({4}, DType::F32, dev));
        api.broadcast("nccl", bcs.back(), root, true);
      }
      api.synchronize();
      for (int root = 0; root < 4; ++root) {
        EXPECT_DOUBLE_EQ(bcs[static_cast<std::size_t>(root)].get(0), root + 50.0);
      }
    });
    // 4 roots x 4 ranks: sixteen separate buckets.
    EXPECT_EQ(mcr.fusion().flush_count(), 16) << exec.describe();
  }
}

// Timeout-vs-size race: the buffer fills (size flush) strictly before the
// armed timeout's deadline. The timeout must neither flush a second time nor
// leave its closure in the queue; a fresh batch after the flush re-arms its
// own timer.
TEST(Bucketing, SizeFlushBeatsTimeoutAndCancelsIt) {
  for (const auto& exec : engines()) {
    McrDlOptions opts;
    opts.fusion.enabled = true;
    opts.fusion.buffer_bytes = 64;       // 4 x 4 F32 fills it
    opts.fusion.flush_timeout_us = 40.0;
    opts.fusion.max_tensor_bytes = 1 << 20;
    ClusterContext cluster(net::SystemConfig::lassen(1), exec);
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      std::vector<Tensor> ts;
      for (int i = 0; i < 4; ++i) {
        ts.push_back(Tensor::full({4}, DType::F32, i + 1.0, dev));
        api.all_reduce("nccl", ts.back(), ReduceOp::Sum, true);
      }
      // Sleep past the (cancelled) timer's deadline: a stale or re-fired
      // timeout flush would bump timeout_flush_count_.
      cluster.scheduler().sleep_for(200.0);
      api.synchronize();
      for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(ts[static_cast<std::size_t>(i)].get(0), 4.0 * (i + 1.0));
      }
    });
    EXPECT_EQ(mcr.fusion().flush_count(), 4) << exec.describe();
    EXPECT_EQ(mcr.fusion().timeout_flush_count(), 0)
        << "size flush must cancel the armed timeout (" << exec.describe() << ")";
  }
}

// The reverse race: the timeout fires first (buffer never fills); tensors
// submitted after the timeout flush start a fresh batch with its own timer.
TEST(Bucketing, TimeoutFlushThenFreshBatch) {
  for (const auto& exec : engines()) {
    McrDlOptions opts;
    opts.fusion.enabled = true;
    opts.fusion.buffer_bytes = 1 << 24;  // never fills
    opts.fusion.flush_timeout_us = 25.0;
    ClusterContext cluster(net::SystemConfig::lassen(1), exec);
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      Tensor a = Tensor::full({4}, DType::F32, 1.0, dev);
      Work wa = api.all_reduce("nccl", a, ReduceOp::Sum, true);
      cluster.scheduler().sleep_for(500.0);  // timeout flushes batch #1
      EXPECT_TRUE(wa->test());
      Tensor b = Tensor::full({4}, DType::F32, 2.0, dev);
      api.all_reduce("nccl", b, ReduceOp::Sum, true);
      api.synchronize();
      EXPECT_DOUBLE_EQ(a.get(0), 4.0);
      EXPECT_DOUBLE_EQ(b.get(0), 8.0);
    });
    EXPECT_EQ(mcr.fusion().flush_count(), 8) << exec.describe();  // 2 per rank
    EXPECT_GE(mcr.fusion().timeout_flush_count(), 4) << exec.describe();
  }
}

// Regression for the flush-timer leak: every size-triggered flush used to
// strand its armed timeout closure in the scheduler queue until the distant
// deadline. With cancellation in place, a bucket-heavy workload must leave
// the event queue empty once its ops complete.
TEST(Bucketing, SizeFlushesDoNotAccumulateSchedulerEvents) {
  for (const auto& exec : engines()) {
    McrDlOptions opts;
    opts.fusion.enabled = true;
    opts.fusion.buffer_bytes = 64;
    opts.fusion.flush_timeout_us = 1e9;  // a leaked timer would linger ~forever
    opts.fusion.max_tensor_bytes = 1 << 20;
    ClusterContext cluster(net::SystemConfig::lassen(1), exec);
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      for (int round = 0; round < 64; ++round) {
        std::vector<Tensor> ts;
        for (int i = 0; i < 4; ++i) {
          ts.push_back(Tensor::full({4}, DType::F32, 1.0, dev));
          api.all_reduce("nccl", ts.back(), ReduceOp::Sum, true);
        }
        api.synchronize();
      }
      api.barrier("nccl");
      api.synchronize();
      // 64 size flushes/rank are behind us. The leak this guards against
      // strands one timer per flush at the ~forever deadline, so a tight
      // bound (a stray in-flight barrier event is tolerable; hundreds of
      // stranded timers are not) distinguishes fixed from broken.
      EXPECT_LE(cluster.scheduler().pending_events(), 8u)
          << "leaked flush timers in the event queue (" << exec.describe() << ")";
    });
    EXPECT_GE(mcr.fusion().flush_count(), 64 * 4);
  }
}

// complete_time() on a Work whose batch has not flushed has no completion
// instant; it must refuse loudly instead of returning a valid-looking 0.0.
TEST(Bucketing, CompleteTimeBeforeFlushThrows) {
  McrDlOptions opts;
  opts.fusion.enabled = true;
  opts.fusion.buffer_bytes = 1 << 24;
  opts.fusion.flush_timeout_us = 1e6;
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
    Work w = api.all_reduce("nccl", t, ReduceOp::Sum, true);
    EXPECT_FALSE(w->test());
    EXPECT_THROW(w->complete_time(), Error);
    w->wait();           // forces the flush: complete_time() may be queried now
    api.synchronize();   // drains the stream so the completion instant is set
    EXPECT_GT(w->complete_time(), 0.0);
  });
}

// Ops outside the configured set must bypass buckets entirely even when
// bucketing is enabled — and set_config rejects unbucketable ops.
TEST(Bucketing, AdmissionRespectsConfiguredOps) {
  McrDlOptions opts;
  opts.fusion = bucket_all_config();
  opts.fusion.ops = {OpType::Reduce};  // only Reduce is bucketed
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});
  EXPECT_TRUE(mcr.fusion().admits(OpType::Reduce));
  EXPECT_FALSE(mcr.fusion().admits(OpType::AllReduce));
  EXPECT_FALSE(mcr.fusion().admits(OpType::Broadcast));
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster.device(rank));
    api.all_reduce("nccl", t, ReduceOp::Sum, true);  // must bypass the bucket
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
  EXPECT_EQ(mcr.fusion().fused_tensor_count(), 0);

  FusionConfig bad;
  bad.ops = {OpType::AllGather};  // layout-coupled: not bucketable
  EXPECT_THROW(mcr.fusion().set_config(bad), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl
