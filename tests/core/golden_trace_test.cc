// Golden-trace regression harness: a fixed mixed-backend workload is run
// through the full facade (fusion, compression, emulation, "auto" tuning,
// p2p, sub-groups, fault routing) and every CommRecord — including virtual
// start/end times — is serialised canonically and compared byte-for-byte
// against a checked-in golden file. This pins the refactor invariant that
// collective dispatch restructuring must not move a single virtual-time
// stamp, and PR 1's invariant that an installed-but-empty fault plan is
// bit-identical to a build without the fault subsystem.
//
// To regenerate after an *intentional* behaviour change:
//   MCRDL_UPDATE_GOLDEN=1 ./build/tests/core/core_golden_trace_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

// One line per CommRecord. `requested_backend` is serialised only for
// rerouted operations, so the canonical form is stable across metadata
// enrichments that fill the field on the non-rerouted path too.
std::string canonical_records(const CommLogger& logger) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  for (const CommRecord& r : logger.records()) {
    os << r.rank << '|' << op_name(r.op) << '|' << r.backend << '|' << r.bytes << '|' << r.start
       << '|' << r.end << '|' << (r.fused ? 'F' : '.') << (r.compressed ? 'C' : '.') << '|'
       << r.attempts << '|' << (r.rerouted ? r.requested_backend : std::string("-")) << '|'
       << (r.fault.empty() ? std::string("-") : r.fault) << '\n';
  }
  return os.str();
}

// The fixed workload: every dispatch path the facade has. Returns a data
// checksum so the golden also guards data semantics, not just timing.
double run_workload(McrDl& mcr, ClusterContext& cluster) {
  const int n = cluster.world_size();
  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    double& sum = sums[static_cast<std::size_t>(rank)];

    // Fused small allreduces (async) on nccl.
    std::vector<Tensor> fused;
    for (int i = 0; i < 3; ++i) {
      Tensor t = Tensor::full({256}, DType::F32, rank + i + 1.0, dev);
      api.all_reduce("nccl", t, ReduceOp::Sum, /*async_op=*/true);
      fused.push_back(t);
    }

    // Large allreduce on mv2-gdr (bypasses fusion: > max_tensor_bytes).
    Tensor big = Tensor::full({32768}, DType::F32, 1.0, dev);
    api.all_reduce("mv2-gdr", big);
    sum += big.get(0);

    // Compressed broadcast on mv2-gdr.
    Tensor bc = rank == 0 ? Tensor::full({8192}, DType::F32, 3.5, dev)
                          : Tensor::zeros({8192}, DType::F32, dev);
    api.broadcast("mv2-gdr", bc, 0);
    sum += bc.get(8191);

    // Compressed all_gather on nccl.
    Tensor ag_in = Tensor::full({2048}, DType::F32, rank * 1.0, dev);
    Tensor ag_out = Tensor::zeros({2048 * n}, DType::F32, dev);
    api.all_gather("nccl", ag_out, ag_in);

    // Emulated gather on nccl (root 2).
    Tensor g_in = Tensor::full({4}, DType::F32, rank + 1.0, dev);
    Tensor g_out = rank == 2 ? Tensor::zeros({4 * n}, DType::F32, dev) : Tensor();
    api.gather("nccl", g_out, g_in, /*root=*/2);
    if (rank == 2) sum += g_out.get(4 * n - 1);

    // Emulated all_gatherv on nccl (uneven counts).
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    Tensor agv_in = Tensor::full({rank + 1}, DType::F32, rank * 1.0, dev);
    Tensor agv_out = Tensor::zeros({total}, DType::F32, dev);
    api.all_gatherv("nccl", agv_out, agv_in, counts, displs);
    sum += agv_out.get(total - 1);

    // Native all_to_allv on mv2-gdr (uniform 2-element blocks).
    std::vector<int> two(static_cast<std::size_t>(n), 2), twod;
    for (int r = 0; r < n; ++r) twod.push_back(2 * r);
    Tensor av_in = Tensor::arange(2 * n, DType::F32, dev);
    Tensor av_out = Tensor::zeros({2 * n}, DType::F32, dev);
    api.all_to_allv("mv2-gdr", av_out, av_in, two, twod, two, twod);
    sum += av_out.get(0);

    // Emulated scatterv on nccl (root 1).
    Tensor sv_in =
        rank == 1 ? Tensor::arange(2 * n, DType::F32, dev) : Tensor();
    Tensor sv_out = Tensor::zeros({2}, DType::F32, dev);
    api.scatterv("nccl", sv_out, sv_in, /*root=*/1, two, twod);
    sum += sv_out.get(1);

    // reduce_scatter on mv2-gdr.
    Tensor rs_in = Tensor::arange(n, DType::F32, dev);
    Tensor rs_out = Tensor::zeros({1}, DType::F32, dev);
    api.reduce_scatter("mv2-gdr", rs_out, rs_in);
    sum += rs_out.get(0);

    // Compressed all_to_all_single on nccl.
    Tensor a2a_in = Tensor::full({4096}, DType::F32, rank * 1.0, dev);
    Tensor a2a_out = Tensor::zeros({4096}, DType::F32, dev);
    api.all_to_all_single("nccl", a2a_out, a2a_in);

    // "auto" dispatch through the tuning table: small and large buckets.
    Tensor au_small = Tensor::full({8}, DType::F32, 1.0, dev);
    Work ws = api.all_reduce("auto", au_small, ReduceOp::Sum, true);
    Tensor au_large = Tensor::full({1 << 16}, DType::F32, 1.0, dev);
    Work wl = api.all_reduce("auto", au_large, ReduceOp::Sum, true);
    ws->synchronize();
    wl->synchronize();
    sum += au_small.get(0) + au_large.get(0);

    // Point-to-point on nccl between ranks 0 and 1.
    if (rank == 0) {
      Tensor p = Tensor::full({1024}, DType::F32, 42.0, dev);
      api.send("nccl", p, /*dst=*/1);
    } else if (rank == 1) {
      Tensor p = Tensor::zeros({1024}, DType::F32, dev);
      api.recv("nccl", p, /*src=*/0);
      api.synchronize("nccl");
      sum += p.get(0);
    }

    // Sub-group allreduce on mv2-gdr (two halves of the world).
    std::vector<int> half;
    for (int r = 0; r < n / 2; ++r) half.push_back(rank < n / 2 ? r : n / 2 + r);
    Api grp = api.group(half);
    Tensor gt = Tensor::full({16}, DType::F32, 1.0, dev);
    grp.all_reduce("mv2-gdr", gt);
    sum += gt.get(0);

    api.barrier("mv2-gdr");
    api.synchronize();
    for (const Tensor& t : fused) sum += t.get(0);
  });
  double checksum = 0.0;
  for (double s : sums) checksum += s;
  return checksum;
}

McrDlOptions base_options() {
  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.per_call_overhead_us = 2.0;
  opts.fusion.enabled = true;
  opts.compression.enabled = true;
  opts.compression.min_bytes = 4096;
  return opts;
}

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan;
  plan.seed = 0xdecaf123ULL;
  plan.specs.push_back(
      fault::FaultSpec::transient_op("nccl", OpType::AllGather, 0.2, 0.0, 2000.0));
  plan.specs.push_back(fault::FaultSpec::outage("mv2-gdr", 700.0));
  plan.specs.push_back(fault::FaultSpec::straggler(3, 25.0, 0.0, 1500.0));
  return plan;
}

// Runs the workload on a fresh 2-node Lassen cluster and serialises the
// resulting trace. `fault_mode`: 0 = subsystem off, 1 = enabled with an
// empty plan, 2 = enabled with the chaos plan, 3 = enabled with elastic
// recovery armed but a loss instant beyond the end of the run, 4 = mode 3
// plus a rejoin spec even further out (grow path armed, never fired).
std::string run_scenario(int fault_mode,
                         sim::ExecutionConfig exec = sim::ExecutionConfig::serial(),
                         bool fast_dispatch = true) {
  McrDlOptions opts = base_options();
  opts.fast_dispatch = fast_dispatch;
  if (fault_mode == 1) opts.fault.enabled = true;
  if (fault_mode == 2) {
    opts.fault.enabled = true;
    opts.fault.plan = chaos_plan();
    // Fusion flushes can fire from timer context, where injected straggler
    // delays cannot suspend; the fused path is pinned by the no-fault golden.
    opts.fusion.enabled = false;
  }
  if (fault_mode == 3 || fault_mode == 4) {
    opts.fault.enabled = true;
    opts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(0, 1e12));
  }
  if (fault_mode == 4) {
    opts.fault.plan.specs.push_back(fault::FaultSpec::rejoin_rank(0, 2e12));
  }
  ClusterContext cluster(net::SystemConfig::lassen(2), exec);
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  TuningTable table;
  table.set(OpType::AllReduce, cluster.world_size(), 1024, "mv2-gdr");
  table.set(OpType::AllReduce, cluster.world_size(), 1 << 26, "nccl");
  mcr.set_tuning_table(std::move(table));

  const double checksum = run_workload(mcr, cluster);

  std::ostringstream os;
  os << canonical_records(mcr.logger());
  os << std::fixed << std::setprecision(6) << "checksum=" << checksum
     << " final_t=" << cluster.scheduler().now() << '\n';
  return os.str();
}

std::string golden_path(const std::string& name) {
  return std::string(MCRDL_GOLDEN_DIR) + "/" + name;
}

void compare_with_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("MCRDL_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with MCRDL_UPDATE_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected != actual) {
    // Find the first differing line for a readable failure.
    std::istringstream ea(expected), aa(actual);
    std::string el, al;
    int line = 1;
    while (std::getline(ea, el) && std::getline(aa, al) && el == al) ++line;
    FAIL() << "trace diverges from golden " << name << " at line " << line << "\n  golden: " << el
           << "\n  actual: " << al;
  }
}

TEST(GoldenTrace, FaultSubsystemDisabled) {
  compare_with_golden("trace_nofault.txt", run_scenario(0));
}

TEST(GoldenTrace, ChaosPlanReplaysIdentically) {
  compare_with_golden("trace_chaos.txt", run_scenario(2));
}

// PR 1 invariant: enabling the fault subsystem with an empty plan must be
// bit-identical to running without it — same records, same virtual times.
TEST(GoldenTrace, EmptyFaultPlanIsBitIdenticalToDisabled) {
  EXPECT_EQ(run_scenario(0), run_scenario(1));
}

// Elastic-recovery invariant: arming recovery (a rank_loss spec whose
// instant lies beyond the end of the run, so the loss event never fires)
// must not move a single virtual-time stamp either — the recover stage at
// epoch 0 is a pure pass-through.
TEST(GoldenTrace, ArmedRecoveryWithNoLossIsBitIdenticalToDisabled) {
  EXPECT_EQ(run_scenario(0), run_scenario(3));
}

// Grow-path extension of the same invariant (DESIGN.md §13): arming rejoin
// (a rank_rejoin spec that never fires, on top of the never-firing loss)
// registers grow hooks and the checkpoint sections but must not move a
// single virtual-time stamp either.
TEST(GoldenTrace, ArmedRejoinWithNoGrowIsBitIdenticalToDisabled) {
  EXPECT_EQ(run_scenario(0), run_scenario(4));
}

// Tentpole invariant of the ExecutionModel seam (DESIGN.md §11): the
// ParallelShards engine is an *execution* strategy, not a *semantics*
// change. Running the full mixed-backend workload across concurrent shards
// must reproduce the serial baton's trace byte-for-byte — every virtual-time
// stamp, every routing decision, every checksum.
TEST(GoldenTrace, ParallelShardsIsByteIdenticalToSerial) {
  const std::string serial = run_scenario(0);
  EXPECT_EQ(serial, run_scenario(0, sim::ExecutionConfig::parallel(2)));
  EXPECT_EQ(serial, run_scenario(0, sim::ExecutionConfig::parallel(4)));
}

// The same invariant holds against the checked-in golden, so a divergence
// cannot hide behind both engines drifting together.
TEST(GoldenTrace, ParallelShardsMatchesGolden) {
  compare_with_golden("trace_nofault.txt", run_scenario(0, sim::ExecutionConfig::parallel(4)));
}

// Hot-path invariant (DESIGN.md §14): fast dispatch — arena OpCalls,
// precompiled stage plans that elide provably no-op stages, cached metric
// handles — is an *implementation* of dispatch, not a semantics change.
// The slow path (a fresh OpCall per op, every stage invoked) must produce
// the identical trace, virtual-time stamp for stamp, on both engines and
// under the chaos plan's full retry/failover machinery.
TEST(GoldenTrace, FastAndSlowDispatchAreByteIdentical) {
  EXPECT_EQ(run_scenario(0), run_scenario(0, sim::ExecutionConfig::serial(), false));
  EXPECT_EQ(run_scenario(2), run_scenario(2, sim::ExecutionConfig::serial(), false));
  EXPECT_EQ(run_scenario(0, sim::ExecutionConfig::parallel(4)),
            run_scenario(0, sim::ExecutionConfig::parallel(4), false));
}

// The slow path matches the checked-in golden too (it IS the shape that
// generated it), so fast and slow cannot drift together unnoticed.
TEST(GoldenTrace, SlowDispatchMatchesGolden) {
  compare_with_golden("trace_nofault.txt",
                      run_scenario(0, sim::ExecutionConfig::serial(), false));
}

}  // namespace
}  // namespace mcrdl
