// CompositeWork lifetime discipline. The finish stage registers a completion
// closure that captures the composite's own Work handle; the engines'
// fail/cancel paths *drop* part callbacks without firing them. Together
// those two facts used to leave an abandoned composite pinned forever by
// its own callback (part -> callback -> composite -> part cycle). These
// tests pin the fix — weak part callbacks, a self-anchor released on every
// terminal path, and cancel() for owners abandoning a dead composite — and
// run under CI's ASan build, which would flag the leak.
#include "src/core/composite_work.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/scheduler.h"

namespace mcrdl {
namespace {

// A part whose completion is driven by hand: fire() runs the registered
// callbacks (normal completion), drop_callbacks() discards them without
// firing — exactly what Rendezvous::fail()/cancel() do on rank loss.
class ManualWork : public WorkHandle {
 public:
  bool test() const override { return done_; }
  void wait() override {}
  void synchronize() override {}
  SimTime complete_time() const override { return 0.0; }
  void on_complete(std::function<void()> fn) override {
    if (done_) {
      fn();
      return;
    }
    callbacks_.push_back(std::move(fn));
  }

  void fire() {
    done_ = true;
    auto cbs = std::move(callbacks_);
    callbacks_.clear();
    for (auto& fn : cbs) fn();
  }
  void drop_callbacks() { callbacks_.clear(); }
  std::size_t armed_callbacks() const { return callbacks_.size(); }

 private:
  bool done_ = false;
  std::vector<std::function<void()>> callbacks_;
};

TEST(CompositeWork, FinalizeRunsOnceBeforeCompletionCallbacks) {
  sim::Scheduler sched;
  auto a = std::make_shared<ManualWork>();
  auto b = std::make_shared<ManualWork>();
  int finalized = 0;
  bool callback_saw_finalize = false;
  Work w = make_composite(&sched, {a, b}, [&] { ++finalized; });
  w->on_complete([&] { callback_saw_finalize = finalized == 1; });

  a->fire();
  EXPECT_FALSE(w->test());
  b->fire();
  EXPECT_TRUE(w->test());
  EXPECT_EQ(finalized, 1);
  EXPECT_TRUE(callback_saw_finalize);
}

TEST(CompositeWork, EmptyPartListCompletesImmediately) {
  sim::Scheduler sched;
  Work w = make_composite(&sched, {});
  EXPECT_TRUE(w->test());
}

TEST(CompositeWork, NormalCompletionReleasesSelfCapturingCallback) {
  sim::Scheduler sched;
  auto a = std::make_shared<ManualWork>();
  Work w = make_composite(&sched, {a});
  std::weak_ptr<WorkHandle> weak = w;
  // The finish stage's shape: a completion closure owning the composite.
  w->on_complete([w] { (void)w; });
  w.reset();
  EXPECT_FALSE(weak.expired());
  a->fire();
  EXPECT_TRUE(weak.expired()) << "completed composite still pinned by its own callback";
}

TEST(CompositeWork, CancelAfterPartsDropCallbacksFreesTheComposite) {
  sim::Scheduler sched;
  auto a = std::make_shared<ManualWork>();
  auto b = std::make_shared<ManualWork>();
  Work w = make_composite(&sched, {a, b});
  ASSERT_EQ(a->armed_callbacks(), 1u);
  auto* raw = static_cast<CompositeWork*>(w.get());
  std::weak_ptr<WorkHandle> weak = w;
  w->on_complete([w] { (void)w; });  // self-cycle, as registered by finish
  w.reset();

  // Rank loss: the engines drop the part callbacks without firing them. The
  // composite can now never complete on its own...
  a->drop_callbacks();
  b->drop_callbacks();
  EXPECT_FALSE(weak.expired());

  // ...so an owner abandoning it must be able to sever the cycle.
  raw->cancel();
  EXPECT_TRUE(weak.expired()) << "cancelled composite leaked via its self-capturing callback";
}

TEST(CompositeWork, CancelIsIdempotentAndNoopAfterCompletion) {
  sim::Scheduler sched;
  auto a = std::make_shared<ManualWork>();
  int fired = 0;
  auto w = std::make_shared<CompositeWork>(&sched, std::vector<Work>{a});
  w->arm();
  w->on_complete([&] { ++fired; });
  a->fire();
  EXPECT_TRUE(w->test());
  EXPECT_EQ(fired, 1);
  w->cancel();  // already done: must not fire or reset anything
  EXPECT_TRUE(w->test());
  EXPECT_EQ(fired, 1);
}

TEST(CompositeWork, PartCallbacksAreWeak) {
  // A part outliving the (cancelled) composite must not keep it alive nor
  // crash when it eventually fires.
  sim::Scheduler sched;
  auto a = std::make_shared<ManualWork>();
  auto w = std::make_shared<CompositeWork>(&sched, std::vector<Work>{a});
  w->arm();
  std::weak_ptr<CompositeWork> weak = w;
  w->cancel();
  w.reset();
  EXPECT_TRUE(weak.expired());
  a->fire();  // late completion of an abandoned composite's part: harmless
}

}  // namespace
}  // namespace mcrdl
