// End-to-end tests of the public MCR-DL API (paper Listing 1): lifecycle,
// every operation through the facade, emulation of non-native ops on NCCL,
// mixed-backend programs, sub-groups, and "auto" dispatch.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  void make(int nodes = 2, McrDlOptions opts = {}) {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(nodes));
    mcr_ = std::make_unique<McrDl>(cluster_.get(), opts);
  }
  int world() const { return cluster_->world_size(); }

  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<McrDl> mcr_;
};

TEST_F(ApiTest, InitFinalizeLifecycle) {
  make();
  EXPECT_FALSE(mcr_->initialized());
  mcr_->init({"nccl", "mv2-gdr"});
  EXPECT_TRUE(mcr_->initialized());
  EXPECT_EQ(mcr_->get_backends(), (std::vector<std::string>{"nccl", "mv2-gdr"}));
  EXPECT_TRUE(mcr_->has_backend("nccl"));
  EXPECT_FALSE(mcr_->has_backend("ompi"));
  EXPECT_THROW(mcr_->backend("ompi"), InvalidArgument);
  mcr_->finalize();
  EXPECT_FALSE(mcr_->initialized());
}

TEST_F(ApiTest, DuplicateBackendInInitRejected) {
  make();
  EXPECT_THROW(mcr_->init({"nccl", "nccl"}), InvalidArgument);
}

TEST_F(ApiTest, GetRankAndSize) {
  make();
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    EXPECT_EQ(api.get_rank("nccl"), rank);
    EXPECT_EQ(api.get_size("nccl"), world());
  });
}

TEST_F(ApiTest, AllOpsThroughFacadeOnMpi) {
  make();
  mcr_->init({"mv2-gdr"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    sim::Device* dev = cluster_->device(rank);

    Tensor ar = Tensor::full({4}, DType::F32, 1.0, dev);
    api.all_reduce("mv2-gdr", ar);
    EXPECT_DOUBLE_EQ(ar.get(0), n);

    Tensor bc = rank == 0 ? Tensor::full({2}, DType::F32, 5.0, dev)
                          : Tensor::zeros({2}, DType::F32, dev);
    api.broadcast("mv2-gdr", bc, 0);
    EXPECT_DOUBLE_EQ(bc.get(1), 5.0);

    Tensor in = Tensor::full({1}, DType::F32, rank * 1.0, dev);
    Tensor out = Tensor::zeros({n}, DType::F32, dev);
    api.all_gather("mv2-gdr", out, in);
    EXPECT_DOUBLE_EQ(out.get(n - 1), n - 1.0);

    Tensor rs_in = Tensor::arange(n, DType::F32, dev);
    Tensor rs_out = Tensor::zeros({1}, DType::F32, dev);
    api.reduce_scatter("mv2-gdr", rs_out, rs_in);
    EXPECT_DOUBLE_EQ(rs_out.get(0), static_cast<double>(n) * rank);

    Tensor a2a_in = Tensor::full({n}, DType::F32, rank * 1.0, dev);
    Tensor a2a_out = Tensor::zeros({n}, DType::F32, dev);
    api.all_to_all_single("mv2-gdr", a2a_out, a2a_in);
    EXPECT_DOUBLE_EQ(a2a_out.get(n - 1), n - 1.0);

    api.barrier("mv2-gdr");
    api.synchronize();
  });
}

TEST_F(ApiTest, NcclGatherIsEmulatedTransparently) {
  make();
  mcr_->init({"nccl"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor in = Tensor::full({2}, DType::F32, rank + 1.0, cluster_->device(rank));
    Tensor out =
        rank == 0 ? Tensor::zeros({2 * n}, DType::F32, cluster_->device(rank)) : Tensor();
    api.gather("nccl", out, in, /*root=*/0);
    if (rank == 0) {
      for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(out.get(2 * r), r + 1.0);
    }
  });
}

TEST_F(ApiTest, NcclScatterIsEmulated) {
  make();
  mcr_->init({"nccl"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor in = rank == 0 ? Tensor::arange(n, DType::F32, cluster_->device(rank)) : Tensor();
    Tensor out = Tensor::zeros({1}, DType::F32, cluster_->device(rank));
    api.scatter("nccl", out, in, 0);
    EXPECT_DOUBLE_EQ(out.get(0), rank);
  });
}

TEST_F(ApiTest, NcclGathervIsEmulatedViaP2p) {
  make();
  mcr_->init({"nccl"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor in = Tensor::full({rank + 1}, DType::F32, rank * 1.0, cluster_->device(rank));
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    Tensor out =
        rank == 0 ? Tensor::zeros({total}, DType::F32, cluster_->device(rank)) : Tensor();
    api.gatherv("nccl", out, in, 0, counts, displs);
    api.synchronize();
    if (rank == 0) {
      EXPECT_DOUBLE_EQ(out.get(0), 0.0);
      EXPECT_DOUBLE_EQ(out.get(total - 1), n - 1.0);
    }
  });
}

TEST_F(ApiTest, NcclScattervIsEmulated) {
  make();
  mcr_->init({"nccl"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    std::vector<int> counts(static_cast<std::size_t>(n), 2), displs;
    for (int r = 0; r < n; ++r) displs.push_back(2 * r);
    Tensor in = rank == 1 ? Tensor::arange(2 * n, DType::F32, cluster_->device(rank)) : Tensor();
    Tensor out = Tensor::zeros({2}, DType::F32, cluster_->device(rank));
    api.scatterv("nccl", out, in, 1, counts, displs);
    api.synchronize();
    EXPECT_DOUBLE_EQ(out.get(0), 2.0 * rank);
    EXPECT_DOUBLE_EQ(out.get(1), 2.0 * rank + 1);
  });
}

TEST_F(ApiTest, NcclAllGathervIsEmulatedViaPadding) {
  make();
  mcr_->init({"nccl"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor in = Tensor::full({rank + 1}, DType::F32, rank * 1.0, cluster_->device(rank));
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    Tensor out = Tensor::zeros({total}, DType::F32, cluster_->device(rank));
    api.all_gatherv("nccl", out, in, counts, displs);
    int pos = 0;
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k <= r; ++k) EXPECT_DOUBLE_EQ(out.get(pos++), r);
    }
  });
}

TEST_F(ApiTest, NcclAllToAllvIsEmulatedViaPaddedExchange) {
  make(1);  // 4 ranks
  mcr_->init({"nccl"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    // Rank r sends (d+1) elements of value r*100+d to destination d.
    std::vector<int> scounts, sdispls, rcounts, rdispls;
    int stotal = 0, rtotal = 0;
    for (int d = 0; d < n; ++d) {
      scounts.push_back(d + 1);
      sdispls.push_back(stotal);
      stotal += d + 1;
      rcounts.push_back(rank + 1);
      rdispls.push_back(rtotal);
      rtotal += rank + 1;
    }
    Tensor in = Tensor::zeros({stotal}, DType::F32, cluster_->device(rank));
    for (int d = 0; d < n; ++d) {
      for (int k = 0; k < scounts[static_cast<std::size_t>(d)]; ++k) {
        in.set(sdispls[static_cast<std::size_t>(d)] + k, rank * 100.0 + d);
      }
    }
    Tensor out = Tensor::zeros({rtotal}, DType::F32, cluster_->device(rank));
    api.all_to_allv("nccl", out, in, scounts, sdispls, rcounts, rdispls);
    for (int s = 0; s < n; ++s) {
      for (int k = 0; k <= rank; ++k) {
        EXPECT_DOUBLE_EQ(out.get(rdispls[static_cast<std::size_t>(s)] + k), s * 100.0 + rank);
      }
    }
  });
}

TEST_F(ApiTest, MixedBackendListing4Program) {
  // The paper's Listing 4: two allreduces on different backends in flight.
  make();
  mcr_->init({"nccl", "mv2-gdr"});
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor x = Tensor::full({64}, DType::F32, 1.0, cluster_->device(rank));
    Tensor y = Tensor::full({64}, DType::F32, 2.0, cluster_->device(rank));
    Work h1 = api.all_reduce("nccl", x, ReduceOp::Sum, true);
    Work h2 = api.all_reduce("mv2-gdr", y, ReduceOp::Sum, true);
    h1->synchronize();
    h2->synchronize();
    EXPECT_DOUBLE_EQ(x.get(0), n);
    EXPECT_DOUBLE_EQ(y.get(0), 2.0 * n);
  });
}

TEST_F(ApiTest, SubGroupApi) {
  make();  // 8 ranks
  mcr_->init({"mv2-gdr"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    std::vector<int> my_group = rank < 4 ? std::vector<int>{0, 1, 2, 3}
                                         : std::vector<int>{4, 5, 6, 7};
    Api grp = api.group(my_group);
    EXPECT_EQ(grp.get_size("mv2-gdr"), 4);
    Tensor t = Tensor::full({2}, DType::F32, 1.0, cluster_->device(rank));
    grp.all_reduce("mv2-gdr", t);
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
}

TEST_F(ApiTest, AutoWithoutTableThrows) {
  make();
  mcr_->init({"nccl"});
  cluster_->run_spmd(1, [&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    EXPECT_THROW(api.all_reduce("auto", t), InvalidArgument);
  });
}

TEST_F(ApiTest, AutoDispatchesThroughTuningTable) {
  make();
  mcr_->init({"nccl", "mv2-gdr"});
  TuningTable table;
  table.set(OpType::AllReduce, world(), 1024, "mv2-gdr");
  table.set(OpType::AllReduce, world(), 1 << 26, "nccl");
  mcr_->set_tuning_table(std::move(table));
  const int n = world();
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    // Small message -> mv2-gdr bucket; large message -> nccl bucket. Both
    // must produce correct results; log records prove the routing.
    Tensor small = Tensor::full({8}, DType::F32, 1.0, cluster_->device(rank));
    Work ws = api.all_reduce("auto", small, ReduceOp::Sum, true);
    Tensor large = Tensor::full({1 << 16}, DType::F32, 1.0, cluster_->device(rank));
    Work wl = api.all_reduce("auto", large, ReduceOp::Sum, true);
    ws->synchronize();
    wl->synchronize();
    EXPECT_EQ(ws->backend_name, "mv2-gdr");
    EXPECT_EQ(wl->backend_name, "nccl");
    EXPECT_DOUBLE_EQ(small.get(0), n);
    EXPECT_DOUBLE_EQ(large.get(0), n);
  });
}

TEST_F(ApiTest, AutoFallsBackWhenWinnerNotInitialised) {
  make();
  mcr_->init({"nccl"});
  TuningTable table;
  table.set(OpType::AllReduce, world(), 1 << 26, "sccl");  // not initialised
  mcr_->set_tuning_table(std::move(table));
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({8}, DType::F32, 1.0, cluster_->device(rank));
    Work w = api.all_reduce("auto", t, ReduceOp::Sum, true);
    w->synchronize();
    EXPECT_EQ(w->backend_name, "nccl");
  });
}

TEST_F(ApiTest, PerCallOverheadAdvancesHostClock) {
  McrDlOptions opts;
  opts.per_call_overhead_us = 3.0;
  make(2, opts);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::phantom({256}, DType::F32, cluster_->device(rank));
    const SimTime before = cluster_->scheduler().now();
    api.all_reduce("nccl", t, ReduceOp::Sum, true);
    EXPECT_GE(cluster_->scheduler().now() - before, 3.0);
    api.synchronize();
  });
}

TEST_F(ApiTest, LoggerRecordsRoutedOperations) {
  McrDlOptions opts;
  opts.logging_enabled = true;
  make(2, opts);
  mcr_->init({"nccl", "mv2-gdr"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({256}, DType::F32, 1.0, cluster_->device(rank));
    api.all_reduce("nccl", t);
    Tensor o = Tensor::zeros({256}, DType::F32, cluster_->device(rank));
    api.all_to_all_single("mv2-gdr", o, t);
    api.synchronize();
  });
  EXPECT_EQ(mcr_->logger().op_count(0), 2);
  auto by_backend = mcr_->logger().time_by_backend(0);
  EXPECT_TRUE(by_backend.count("nccl"));
  EXPECT_TRUE(by_backend.count("mv2-gdr"));
  EXPECT_GT(mcr_->logger().comm_time(0), 0.0);
}

}  // namespace
}  // namespace mcrdl
