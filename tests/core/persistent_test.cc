// Tests for persistent collectives: correctness across repeated launches
// and the amortised launch-cost saving.
#include "src/core/persistent.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

TEST(Persistent, RepeatedLaunchesProduceCorrectResults) {
  ClusterContext cluster(net::SystemConfig::lassen(1));  // 4 ranks
  auto backend = make_backend("nccl", &cluster);
  backend->init();
  cluster.run_spmd([&](int rank) {
    Tensor t = Tensor::zeros({4}, DType::F64, cluster.device(rank));
    PersistentAllReduce plan(backend->world(), rank, t, ReduceOp::Sum);
    for (int iter = 1; iter <= 3; ++iter) {
      t.fill(iter * 1.0);  // re-fill the bound buffer, like a gradient step
      plan.launch(/*async_op=*/false);
      backend->synchronize(rank);
      EXPECT_DOUBLE_EQ(t.get(0), 4.0 * iter) << "iteration " << iter;
    }
    EXPECT_EQ(plan.launches(), 3);
  });
}

TEST(Persistent, LaunchesAreCheaperThanOneShotOps) {
  // Small payload: the saving is most of NCCL's 18 µs launch overhead.
  auto run = [](bool persistent) {
    ClusterContext cluster(net::SystemConfig::lassen(1));
    auto backend = make_backend("nccl", &cluster);
    backend->init();
    SimTime total = 0.0;
    cluster.run_spmd([&](int rank) {
      Tensor t = Tensor::phantom({64}, DType::F32, cluster.device(rank));
      PersistentAllReduce plan(backend->world(), rank, t, ReduceOp::Sum);
      for (int i = 0; i < 16; ++i) {
        if (persistent) {
          plan.launch(false);
        } else {
          backend->world()->all_reduce(rank, t, ReduceOp::Sum, false);
        }
        backend->synchronize(rank);
      }
      if (rank == 0) total = cluster.scheduler().now();
    });
    return total;
  };
  const SimTime one_shot = run(false);
  const SimTime persistent = run(true);
  EXPECT_LT(persistent, one_shot);
  // The per-launch saving is (1 - kPersistentLaunchFraction) * 18 µs.
  const double expected_saving = 16 * net::nccl_profile().launch_overhead_us *
                                 (1.0 - kPersistentLaunchFraction);
  EXPECT_NEAR(one_shot - persistent, expected_saving, expected_saving * 0.5);
}

TEST(Persistent, DiscountNeverMakesCostNegative) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  auto backend = make_backend("mv2-gdr", &cluster);
  backend->init();
  cluster.run_spmd([&](int rank) {
    Tensor t = Tensor::phantom({4}, DType::F32, cluster.device(rank));
    // Absurd discount: the engine floors the cost at 10% of base.
    Work w = backend->world()->all_reduce(rank, t, ReduceOp::Sum, true, 1e9);
    w->synchronize();
    EXPECT_GT(w->complete_time(), w->posted_at);
  });
}

TEST(Persistent, InvalidPlansRejected) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  auto backend = make_backend("nccl", &cluster);
  backend->init();
  Tensor undefined;
  EXPECT_THROW(PersistentAllReduce(backend->world(), 0, undefined, ReduceOp::Sum),
               InvalidArgument);
  Tensor t = Tensor::zeros({4}, DType::F32, nullptr);
  EXPECT_THROW(PersistentAllReduce(nullptr, 0, t, ReduceOp::Sum), InvalidArgument);
  cluster.run_spmd(1, [&](int rank) {
    Tensor ok = Tensor::zeros({4}, DType::F32, cluster.device(rank));
    EXPECT_THROW(backend->world()->all_reduce(rank, ok, ReduceOp::Sum, true, -1.0),
                 InvalidArgument);
  });
}

}  // namespace
}  // namespace mcrdl
