// Tests for the OpPipeline dispatch layer: stage order and composability
// (custom stages see every operation), uniform routing metadata in
// CommRecords, OpRequest payload conventions, and the invariant that an op
// emulated through the pipeline produces the same data as a native one.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void make(int nodes = 2, McrDlOptions opts = {}) {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(nodes));
    mcr_ = std::make_unique<McrDl>(cluster_.get(), opts);
  }
  int world() const { return cluster_->world_size(); }

  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<McrDl> mcr_;
};

TEST_F(PipelineTest, BuiltInStageOrder) {
  make();
  EXPECT_EQ(mcr_->pipeline().stage_names(),
            (std::vector<std::string>{"overhead", "resolve", "fusion", "compression", "finish",
                                      "recover", "coll", "route", "issue"}));
}

// A pass-through stage that tallies every operation flowing past it.
class CountingStage : public OpStage {
 public:
  explicit CountingStage(std::vector<OpType>* seen) : seen_(seen) {}
  const char* name() const override { return "counting"; }
  Work run(OpCall& call, const OpNext& next) override {
    // Inserted after resolve, so the backend decision is visible here.
    EXPECT_NE(call.resolved, nullptr);
    seen_->push_back(call.req.op);
    return next();
  }

 private:
  std::vector<OpType>* seen_;
};

TEST_F(PipelineTest, CustomStageSeesEveryOperation) {
  make();
  mcr_->init({"nccl"});
  std::vector<OpType> seen;
  mcr_->pipeline().insert_after("resolve", std::make_unique<CountingStage>(&seen));
  EXPECT_EQ(mcr_->pipeline().stage_names()[2], "counting");

  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    sim::Device* dev = cluster_->device(rank);
    Tensor t = Tensor::full({8}, DType::F32, 1.0, dev);
    api.all_reduce("nccl", t);
    api.barrier("nccl");
  });
  // Every rank's all_reduce and barrier passed through the custom stage.
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(2 * world()));
  EXPECT_EQ(static_cast<int>(std::count(seen.begin(), seen.end(), OpType::AllReduce)), world());
  EXPECT_EQ(static_cast<int>(std::count(seen.begin(), seen.end(), OpType::Barrier)), world());
}

TEST_F(PipelineTest, InsertAtUnknownStageThrows) {
  make();
  std::vector<OpType> seen;
  EXPECT_THROW(mcr_->pipeline().insert_before("no-such-stage",
                                              std::make_unique<CountingStage>(&seen)),
               InvalidArgument);
  EXPECT_THROW(mcr_->pipeline().insert_after("no-such-stage",
                                             std::make_unique<CountingStage>(&seen)),
               InvalidArgument);
}

// Satellite fix for the old `routed` path: routing metadata is recorded
// uniformly — requested_backend is filled even when the op ran exactly where
// it was asked to, with rerouted=false and attempts=1.
TEST_F(PipelineTest, RoutingMetadataRecordedUniformly) {
  McrDlOptions opts;
  opts.logging_enabled = true;
  make(2, opts);
  mcr_->init({"nccl", "mv2-gdr"});
  TuningTable table;
  table.set(OpType::AllReduce, world(), 1 << 26, "mv2-gdr");
  mcr_->set_tuning_table(std::move(table));

  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    sim::Device* dev = cluster_->device(rank);
    Tensor t = Tensor::full({8}, DType::F32, 1.0, dev);
    api.all_reduce("nccl", t);
    Tensor u = Tensor::full({8}, DType::F32, 1.0, dev);
    api.all_reduce("auto", u);
  });

  ASSERT_EQ(mcr_->logger().records().size(), static_cast<std::size_t>(2 * world()));
  for (const CommRecord& r : mcr_->logger().records()) {
    EXPECT_FALSE(r.rerouted);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_TRUE(r.fault.empty());
    // "auto" resolved through the tuning table; the record names the winner.
    EXPECT_EQ(r.requested_backend, r.backend);
    EXPECT_FALSE(r.requested_backend.empty());
  }
}

// The same v-collective produces identical data whether the backend runs it
// natively (mv2-gdr) or the pipeline's issue stage emulates it (nccl).
TEST_F(PipelineTest, EmulatedOpMatchesNativeThroughPipeline) {
  make();
  mcr_->init({"nccl", "mv2-gdr"});
  const int n = world();
  ASSERT_FALSE(mcr_->backend("nccl")->profile().is_native(OpType::AllGatherV));
  ASSERT_TRUE(mcr_->backend("mv2-gdr")->profile().is_native(OpType::AllGatherV));

  std::vector<std::vector<double>> emulated(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> native(static_cast<std::size_t>(n));
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    sim::Device* dev = cluster_->device(rank);
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r % 3 + 1);
      displs.push_back(total);
      total += r % 3 + 1;
    }
    for (const std::string& backend : {std::string("nccl"), std::string("mv2-gdr")}) {
      Tensor in = Tensor::full({rank % 3 + 1}, DType::F32, rank + 0.5, dev);
      Tensor out = Tensor::zeros({total}, DType::F32, dev);
      api.all_gatherv(backend, out, in, counts, displs);
      (backend == "nccl" ? emulated : native)[static_cast<std::size_t>(rank)] = out.to_vector();
    }
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(emulated[static_cast<std::size_t>(r)], native[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_FALSE(native[static_cast<std::size_t>(r)].empty());
  }
}

TEST_F(PipelineTest, PayloadBytesFollowsPerOpConvention) {
  Tensor t = Tensor::zeros({8}, DType::F32, nullptr);     // 32 bytes
  Tensor in = Tensor::zeros({4}, DType::F32, nullptr);    // 16 bytes
  Tensor out = Tensor::zeros({16}, DType::F32, nullptr);  // 64 bytes

  OpRequest req;
  req.tensor = t;
  req.input = in;
  req.output = out;
  req.inputs = {in, in, in};

  req.op = OpType::AllReduce;
  EXPECT_EQ(req.payload_bytes(), 32u);
  req.op = OpType::Send;
  EXPECT_EQ(req.payload_bytes(), 32u);
  req.op = OpType::AllGather;
  EXPECT_EQ(req.payload_bytes(), 16u);
  req.op = OpType::AllToAllV;
  EXPECT_EQ(req.payload_bytes(), 16u);
  req.op = OpType::Scatter;
  EXPECT_EQ(req.payload_bytes(), 64u);
  req.op = OpType::AllToAll;
  EXPECT_EQ(req.payload_bytes(), 48u);  // sum over the input list
  req.op = OpType::Barrier;
  EXPECT_EQ(req.payload_bytes(), 0u);
}

// Fast-path stage plans (DESIGN.md §14): with every optional subsystem off,
// the compiled plan runs only the stages that can do work, and flipping a
// toggle (fusion enabled, overhead > 0) re-admits the matching stage without
// any explicit invalidation call.
TEST_F(PipelineTest, StagePlansElideProvablyNoopStages) {
  make();
  mcr_->init({"nccl"});
  // Default options: overhead 0, fusion/compression disabled, recovery off.
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::AllReduce),
            (std::vector<std::string>{"resolve", "finish", "route", "issue"}));

  // Enabling fusion re-admits the fusion stage for admitted ops only.
  FusionConfig fusion;
  fusion.enabled = true;
  mcr_->fusion().set_config(fusion);
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::AllReduce),
            (std::vector<std::string>{"resolve", "fusion", "finish", "route", "issue"}));
  // Broadcast is not in the default bucketable set: still elided.
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::Broadcast),
            (std::vector<std::string>{"resolve", "finish", "route", "issue"}));

  // Compression admits only its movement ops.
  CompressionConfig comp;
  comp.enabled = true;
  mcr_->compression().set_config(comp);
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::Broadcast),
            (std::vector<std::string>{"resolve", "compression", "finish", "route", "issue"}));
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::AllReduce),
            (std::vector<std::string>{"resolve", "fusion", "finish", "route", "issue"}));

  // Per-call overhead re-admits the overhead stage for everything.
  mcr_->options().per_call_overhead_us = 1.5;
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::Barrier),
            (std::vector<std::string>{"overhead", "resolve", "finish", "route", "issue"}));
}

// Custom stages have no provably_noop proof, so they always run — and
// inserting one invalidates previously compiled plans.
TEST_F(PipelineTest, CustomStagesAreNeverElided) {
  make();
  mcr_->init({"nccl"});
  // Force a plan compile before the insert.
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::AllReduce).size(), 4u);
  std::vector<OpType> seen;
  mcr_->pipeline().insert_after("resolve", std::make_unique<CountingStage>(&seen));
  EXPECT_EQ(mcr_->pipeline().active_stage_names(OpType::AllReduce),
            (std::vector<std::string>{"resolve", "counting", "finish", "route", "issue"}));
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
    api.all_reduce("nccl", t);
    api.synchronize();  // nccl works complete on the stream, not at wait()
    EXPECT_DOUBLE_EQ(t.get(0), 1.0 * world());
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(world()));
}

// The dispatch arena recycles OpCalls: slot creation must stop once every
// rank has warmed its pool, no matter how many ops follow.
TEST_F(PipelineTest, ArenaSlotCountPlateausInSteadyState) {
  make();
  mcr_->init({"nccl"});
  std::size_t after_warmup = 0;
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    for (int i = 0; i < 4; ++i) {
      Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
      api.all_reduce("nccl", t);
    }
    api.barrier("nccl");
    // Draining the stream waits out the barrier, so every rank has dispatched
    // its warmup ops (and warmed its pool) before this returns.
    api.synchronize();
    if (rank == 0) after_warmup = mcr_->pipeline().arena_slots();
    api.barrier("nccl");
    for (int i = 0; i < 64; ++i) {
      Tensor t = Tensor::full({4}, DType::F32, 1.0, cluster_->device(rank));
      api.all_reduce("nccl", t);
    }
  });
  EXPECT_GT(after_warmup, 0u);
  EXPECT_EQ(mcr_->pipeline().arena_slots(), after_warmup)
      << "steady-state dispatch must reuse arena slots, not create new ones";
}

// The slow path must survive the same workload with identical results (its
// trace equivalence is pinned by the golden tests; this guards the API).
TEST_F(PipelineTest, SlowDispatchProducesSameData) {
  McrDlOptions opts;
  opts.fast_dispatch = false;
  make(2, opts);
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({8}, DType::F32, rank + 1.0, cluster_->device(rank));
    api.all_reduce("nccl", t);
    api.synchronize();
    double expected = 0.0;
    for (int r = 0; r < world(); ++r) expected += r + 1.0;
    EXPECT_DOUBLE_EQ(t.get(0), expected);
  });
  // The arena is bypassed entirely on the slow path.
  EXPECT_EQ(mcr_->pipeline().arena_slots(), 0u);
}

}  // namespace
}  // namespace mcrdl
