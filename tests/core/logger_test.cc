// Unit tests for the communication logger's aggregation math.
#include "src/core/logger.h"

#include <gtest/gtest.h>

namespace mcrdl {
namespace {

CommRecord rec(int rank, OpType op, const std::string& backend, std::size_t bytes, SimTime start,
               SimTime end) {
  CommRecord r;
  r.rank = rank;
  r.op = op;
  r.backend = backend;
  r.bytes = bytes;
  r.start = start;
  r.end = end;
  return r;
}

TEST(CommLogger, DisabledByDefaultAndDropsRecords) {
  CommLogger log;
  EXPECT_FALSE(log.enabled());
  log.record(rec(0, OpType::AllReduce, "nccl", 100, 0, 10));
  EXPECT_TRUE(log.records().empty());
}

TEST(CommLogger, IntervalUnionMergesOverlaps) {
  EXPECT_DOUBLE_EQ(CommLogger::interval_union({}), 0.0);
  EXPECT_DOUBLE_EQ(CommLogger::interval_union({{0, 10}}), 10.0);
  EXPECT_DOUBLE_EQ(CommLogger::interval_union({{0, 10}, {5, 15}}), 15.0);
  EXPECT_DOUBLE_EQ(CommLogger::interval_union({{0, 10}, {20, 30}}), 20.0);
  EXPECT_DOUBLE_EQ(CommLogger::interval_union({{0, 10}, {2, 3}, {4, 6}}), 10.0);
  EXPECT_DOUBLE_EQ(CommLogger::interval_union({{20, 30}, {0, 10}, {10, 20}}), 30.0);
}

TEST(CommLogger, CommTimeUsesUnionPerRank) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 100, 0, 10));
  log.record(rec(0, OpType::AllToAllSingle, "mv2-gdr", 100, 5, 20));  // overlaps
  log.record(rec(1, OpType::AllReduce, "nccl", 100, 0, 50));
  EXPECT_DOUBLE_EQ(log.comm_time(0), 20.0);
  EXPECT_DOUBLE_EQ(log.comm_time(1), 50.0);
  EXPECT_DOUBLE_EQ(log.comm_time(2), 0.0);
}

TEST(CommLogger, BreakdownByOpSumsDurations) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 100, 0, 10));
  log.record(rec(0, OpType::AllReduce, "nccl", 100, 20, 25));
  log.record(rec(0, OpType::AllToAllSingle, "mv2-gdr", 100, 30, 60));
  auto by_op = log.time_by_op(0);
  EXPECT_DOUBLE_EQ(by_op["all_reduce"], 15.0);
  EXPECT_DOUBLE_EQ(by_op["all_to_all_single"], 30.0);
}

TEST(CommLogger, BreakdownByBackend) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 100, 0, 10));
  log.record(rec(0, OpType::Broadcast, "nccl", 100, 10, 12));
  log.record(rec(0, OpType::AllToAllSingle, "mv2-gdr", 100, 12, 20));
  auto by_backend = log.time_by_backend(0);
  EXPECT_DOUBLE_EQ(by_backend["nccl"], 12.0);
  EXPECT_DOUBLE_EQ(by_backend["mv2-gdr"], 8.0);
}

TEST(CommLogger, BytesAndCounts) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 100, 0, 1));
  log.record(rec(0, OpType::AllReduce, "nccl", 250, 1, 2));
  log.record(rec(1, OpType::AllReduce, "nccl", 999, 0, 1));
  EXPECT_EQ(log.bytes_moved(0), 350u);
  EXPECT_EQ(log.op_count(0), 2);
  EXPECT_EQ(log.op_count(1), 1);
}

TEST(CommLogger, ClearResets) {
  CommLogger log;
  log.set_enabled(true);
  log.record(rec(0, OpType::AllReduce, "nccl", 1, 0, 1));
  log.clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.op_count(0), 0);
}

}  // namespace
}  // namespace mcrdl
