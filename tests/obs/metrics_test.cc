// MetricsRegistry units plus end-to-end instrumentation: a real pipeline
// run must populate the comm/pipeline/failover counters, the per-stage and
// per-op histograms, and the link gauges — and the snapshot must satisfy
// the strict JSON parser.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/mcr_dl.h"
#include "src/obs/json.h"

namespace mcrdl::obs {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, KeepsTheLastWrite) {
  Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(Histogram, BucketsByInclusiveUpperEdge) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive)
  h.observe(10.5);   // <= 100
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1012.0);
}

TEST(Histogram, DefaultLatencyBoundsArePowersOfTwo) {
  const std::vector<double> b = Histogram::default_latency_bounds_us();
  ASSERT_EQ(b.size(), 21u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 1048576.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_DOUBLE_EQ(b[i], 2.0 * b[i - 1]);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ops", {{"backend", "nccl"}});
  Counter& b = reg.counter("ops", {{"backend", "nccl"}});
  EXPECT_EQ(&a, &b);  // cached references stay valid
  a.inc(3);
  EXPECT_EQ(reg.counter_value("ops", {{"backend", "nccl"}}), 3u);
  EXPECT_EQ(reg.counter_value("ops", {{"backend", "mv2-gdr"}}), 0u);
  reg.counter("ops", {{"backend", "mv2-gdr"}}).inc(2);
  EXPECT_EQ(reg.counter_total("ops"), 5u);
  EXPECT_EQ(reg.size(), 2u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, HistogramBoundsApplyOnlyOnFirstCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {}, {5.0, 50.0});
  Histogram& again = reg.histogram("lat", {}, {1.0});  // ignored: already exists
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(h.bounds().size(), 2u);
  // Empty bounds = default power-of-two edges.
  EXPECT_EQ(reg.histogram("other").bounds().size(), 21u);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(MetricsRegistry, SnapshotIsStrictJsonWithSortedKeys) {
  MetricsRegistry reg;
  reg.counter("ops", {{"backend", "nccl"}, {"op", "all_reduce"}}).inc(7);
  reg.gauge("util", {{"link", "inter"}}).set(0.75);
  reg.histogram("lat", {}, {1.0, 2.0}).observe(1.5);
  const JsonValue doc = parse_json(reg.to_json());

  const auto& counters = doc.at("counters").array;
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].at("name").str, "ops");
  EXPECT_EQ(counters[0].at("labels").at("backend").str, "nccl");
  EXPECT_DOUBLE_EQ(counters[0].at("value").number, 7.0);

  const auto& gauges = doc.at("gauges").array;
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].at("value").number, 0.75);

  const auto& hists = doc.at("histograms").array;
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_DOUBLE_EQ(hists[0].at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hists[0].at("sum").number, 1.5);
  ASSERT_EQ(hists[0].at("bounds").array.size(), 2u);
  ASSERT_EQ(hists[0].at("buckets").array.size(), 3u);
  EXPECT_DOUBLE_EQ(hists[0].at("buckets").array[1].number, 1.0);
}

TEST(MetricsRegistry, SnapshotOrderIsDeterministic) {
  auto build = [](int reversed) {
    MetricsRegistry reg;
    if (reversed) {
      reg.counter("b").inc();
      reg.counter("a", {{"z", "1"}}).inc();
      reg.counter("a", {{"y", "1"}}).inc();
    } else {
      reg.counter("a", {{"y", "1"}}).inc();
      reg.counter("a", {{"z", "1"}}).inc();
      reg.counter("b").inc();
    }
    return reg.to_json();
  };
  EXPECT_EQ(build(0), build(1));
}

// --- end-to-end: one real run populates the whole surface -------------------

TEST(MetricsEndToEnd, PipelineRunPopulatesCountersHistogramsAndGauges) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"nccl", "mv2-gdr"});
  constexpr int kIters = 3;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({256}, DType::F32, 1.0, cluster.device(rank));
    for (int i = 0; i < kIters; ++i) api.all_reduce("nccl", t, ReduceOp::Sum);
    Tensor o = Tensor::zeros({256}, DType::F32, cluster.device(rank));
    api.all_to_all_single("mv2-gdr", o, t);
    api.synchronize();
  });

  MetricsRegistry& m = cluster.metrics();
  const auto world = static_cast<std::uint64_t>(cluster.world_size());

  // Issue-side counters: one native issue per rank per op, no retries.
  EXPECT_EQ(m.counter_value("comm_ops", {{"backend", "nccl"}, {"op", "all_reduce"}}),
            kIters * world);
  EXPECT_EQ(m.counter_value("comm_ops", {{"backend", "mv2-gdr"}, {"op", "all_to_all_single"}}),
            world);
  EXPECT_EQ(m.counter_value("comm_bytes", {{"backend", "nccl"}}),
            kIters * world * 256 * 4);

  // Pipeline-side: completion counter and latency histogram agree.
  EXPECT_EQ(m.counter_value("pipeline_ops", {{"backend", "nccl"}, {"op", "all_reduce"}}),
            kIters * world);
  const Histogram* lat =
      m.find_histogram("op_latency_us", {{"backend", "nccl"}, {"op", "all_reduce"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), kIters * world);
  EXPECT_GT(lat->sum(), 0.0);

  // Every built-in stage observed every op.
  const std::uint64_t total_ops = (kIters + 1) * world;
  for (const std::string& stage : {"overhead", "resolve", "fusion", "compression",
                                   "finish", "recover", "route", "issue"}) {
    const Histogram* h = m.find_histogram("pipeline_stage_us", {{"stage", stage}});
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count(), total_ops) << stage;
  }

  // No faults: the failover counters must not exist / stay zero.
  EXPECT_EQ(m.counter_total("failover_retries"), 0u);
  EXPECT_EQ(m.counter_total("failover_reroutes"), 0u);
  EXPECT_EQ(m.counter_total("breaker_transitions"), 0u);

  // metrics_json() refreshes the link gauges from the cost model and the
  // result satisfies the strict parser.
  const JsonValue doc = parse_json(cluster.metrics_json());
  EXPECT_GT(m.gauge_value("link_ops", {{"link", "intra"}}), 0.0);
  EXPECT_GT(m.gauge_value("link_bytes", {{"link", "intra"}}), 0.0);
  EXPECT_GT(m.gauge_value("link_utilization", {{"link", "intra"}}), 0.0);
  EXPECT_FALSE(doc.at("counters").array.empty());
  EXPECT_FALSE(doc.at("gauges").array.empty());
}

TEST(MetricsEndToEnd, StageTimesAreExclusive) {
  // The per-stage histograms record exclusive time: the sum across stages
  // must not exceed the pipeline's wall-clock share of the run (inclusive
  // accounting would double-count the issue stage once per wrapper stage).
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"nccl"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({1 << 16}, DType::F32, 1.0, cluster.device(rank));
    api.all_reduce("nccl", t, ReduceOp::Sum);
    api.synchronize();
  });
  MetricsRegistry& m = cluster.metrics();
  double stage_sum = 0.0;
  std::uint64_t stage_count = 0;
  for (const std::string& stage : {"overhead", "resolve", "fusion", "compression",
                                   "finish", "recover", "route", "issue"}) {
    const Histogram* h = m.find_histogram("pipeline_stage_us", {{"stage", stage}});
    ASSERT_NE(h, nullptr) << stage;
    stage_sum += h->sum();
    stage_count += h->count();
  }
  EXPECT_EQ(stage_count, 8u * static_cast<std::uint64_t>(cluster.world_size()));
  EXPECT_GE(stage_sum, 0.0);
  // Exclusive times can never exceed the whole run's virtual duration
  // multiplied by the number of ranks submitting concurrently.
  EXPECT_LE(stage_sum, cluster.scheduler().now() * cluster.world_size());
}

}  // namespace
}  // namespace mcrdl::obs
