// json_escape output and the strict parser: escaping must cover every
// control byte, and the parser must reject everything RFC 8259 rejects —
// it is the gate `bench_export --check` and the trace tests rely on.
#include "src/obs/json.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/status.h"

namespace mcrdl::obs {
namespace {

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, NamedControlEscapes) {
  EXPECT_EQ(json_escape("\n"), "\\n");
  EXPECT_EQ(json_escape("\t"), "\\t");
  EXPECT_EQ(json_escape("\r"), "\\r");
  EXPECT_EQ(json_escape("\b"), "\\b");
  EXPECT_EQ(json_escape("\f"), "\\f");
}

TEST(JsonEscape, RemainingControlBytesBecomeUnicodeEscapes) {
  // Bytes below 0x20 without a named escape get \u00XX. The old trace
  // escaper passed these through raw — the regression this layer fixes.
  EXPECT_EQ(json_escape(std::string(1, static_cast<char>(0x01))), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, static_cast<char>(0x1f))), "\\u001f");
  EXPECT_EQ(json_escape(std::string(1, static_cast<char>(0x00))), "\\u0000");
  // 0x20 and above are untouched.
  EXPECT_EQ(json_escape(" ~"), " ~");
}

TEST(JsonEscape, EveryEscapedStringParsesBackToTheOriginal) {
  std::string nasty;
  for (int c = 0; c < 0x30; ++c) nasty.push_back(static_cast<char>(c));
  nasty += "\"\\plain";
  const JsonValue v = parse_json("\"" + json_escape(nasty) + "\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.str, nasty);
}

TEST(JsonParse, Primitives) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2").number, -350.0);
  EXPECT_DOUBLE_EQ(parse_json("0.25").number, 0.25);
  EXPECT_EQ(parse_json("\"hi\"").str, "hi");
}

TEST(JsonParse, NestedContainers) {
  const JsonValue v = parse_json(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_DOUBLE_EQ(a.array[1].number, 2.0);
  EXPECT_TRUE(a.array[2].at("b").boolean);
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), InvalidArgument);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse_json(R"("\u0041")").str, "A");
  // \u escapes decode to UTF-8: 2-byte (U+00E9) and 3-byte (U+20AC).
  EXPECT_EQ(parse_json(R"("\u00e9")").str, "\xc3\xa9");
  EXPECT_EQ(parse_json(R"("\u20AC")").str, "\xe2\x82\xac");
  // Surrogate pair -> 4-byte UTF-8 (U+1F600), and raw UTF-8 passes through.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").str, "\xf0\x9f\x98\x80");
  EXPECT_EQ(parse_json("\"\xc3\xa9\"").str, "\xc3\xa9");
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_json("{} x"), InvalidArgument);
  EXPECT_THROW(parse_json("1 2"), InvalidArgument);
  EXPECT_THROW(parse_json("[1],"), InvalidArgument);
  // Leading/trailing whitespace alone is fine.
  EXPECT_NO_THROW(parse_json("  [1, 2]\n"));
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), InvalidArgument);
  EXPECT_THROW(parse_json("{"), InvalidArgument);
  EXPECT_THROW(parse_json("[1,]"), InvalidArgument);
  EXPECT_THROW(parse_json("{\"a\":}"), InvalidArgument);
  EXPECT_THROW(parse_json("{\"a\" 1}"), InvalidArgument);
  EXPECT_THROW(parse_json("{'a':1}"), InvalidArgument);
  EXPECT_THROW(parse_json("nul"), InvalidArgument);
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a":1,"a":2})"), InvalidArgument);
}

TEST(JsonParse, RejectsMalformedNumbers) {
  EXPECT_THROW(parse_json("01"), InvalidArgument);
  EXPECT_THROW(parse_json("+1"), InvalidArgument);
  EXPECT_THROW(parse_json("1."), InvalidArgument);
  EXPECT_THROW(parse_json(".5"), InvalidArgument);
  EXPECT_THROW(parse_json("1e"), InvalidArgument);
  EXPECT_THROW(parse_json("--1"), InvalidArgument);
}

TEST(JsonParse, RejectsBadStrings) {
  // Raw control byte inside a string literal.
  std::string raw = "\"a";
  raw.push_back(static_cast<char>(0x01));
  raw += "b\"";
  EXPECT_THROW(parse_json(raw), InvalidArgument);
  EXPECT_THROW(parse_json(R"("\q")"), InvalidArgument);       // unknown escape
  EXPECT_THROW(parse_json(R"("\u12")"), InvalidArgument);     // short \u
  EXPECT_THROW(parse_json(R"("\ud83d")"), InvalidArgument);   // lone high surrogate
  EXPECT_THROW(parse_json(R"("\ude00")"), InvalidArgument);   // lone low surrogate
  EXPECT_THROW(parse_json("\"open"), InvalidArgument);        // unterminated
}

TEST(JsonParse, ErrorsCarryTheByteOffset) {
  try {
    parse_json(R"({"a":1,})");
    FAIL() << "accepted a trailing comma";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace mcrdl::obs
