// Composite algorithm-string grammar: plain backend names pass through
// untouched, well-formed composites parse into their spec, and strings that
// were unmistakably meant as composites fail loudly instead of degrading
// into unknown-backend errors downstream.
#include "src/coll/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/status.h"

namespace mcrdl::coll {
namespace {

TEST(CollSpec, PlainBackendNamesAreNotComposites) {
  EXPECT_FALSE(parse("nccl").has_value());
  EXPECT_FALSE(parse("mv2-gdr").has_value());
  EXPECT_FALSE(parse("auto").has_value());
  EXPECT_FALSE(parse("").has_value());
  // Prefix lookalikes that are not in the grammar stay plain names.
  EXPECT_FALSE(parse("hierarchical").has_value());
  EXPECT_FALSE(parse("rsagx").has_value());
}

TEST(CollSpec, ParsesHier) {
  const auto spec = parse("hier:nccl+mv2-gdr");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->algo, CompositeAlgo::Hier);
  EXPECT_EQ(spec->intra, "nccl");
  EXPECT_EQ(spec->inter, "mv2-gdr");
  EXPECT_EQ(spec->text, "hier:nccl+mv2-gdr");
}

TEST(CollSpec, ParsesRsagWithAndWithoutBackend) {
  const auto bare = parse("rsag");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->algo, CompositeAlgo::Rsag);
  EXPECT_TRUE(bare->intra.empty());  // default backend filled at resolve time
  EXPECT_EQ(bare->text, "rsag");

  const auto named = parse("rsag:ompi");
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(named->algo, CompositeAlgo::Rsag);
  EXPECT_EQ(named->intra, "ompi");
}

TEST(CollSpec, MalformedCompositesThrow) {
  EXPECT_THROW(parse("hier"), InvalidArgument);
  EXPECT_THROW(parse("hier:"), InvalidArgument);
  EXPECT_THROW(parse("hier:nccl"), InvalidArgument);
  EXPECT_THROW(parse("hier:+nccl"), InvalidArgument);
  EXPECT_THROW(parse("hier:nccl+"), InvalidArgument);
  EXPECT_THROW(parse("rsag:"), InvalidArgument);
}

TEST(CollSpec, RegistryHasOneRowPerFamily) {
  const auto& infos = registered_composites();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].pattern, "hier:<intra>+<inter>");
  EXPECT_EQ(infos[1].pattern, "rsag[:<backend>]");
  for (const auto& info : infos) EXPECT_FALSE(info.description.empty());
}

TEST(CollSpec, TunerArmsCoverEveryPairAndBackend) {
  const auto arms = composite_arms({"nccl", "mpi"});
  EXPECT_EQ(arms, (std::vector<std::string>{"hier:nccl+nccl", "hier:nccl+mpi", "hier:mpi+nccl",
                                            "hier:mpi+mpi", "rsag:nccl", "rsag:mpi"}));
  // Every generated arm must round-trip through the parser.
  for (const auto& arm : arms) EXPECT_TRUE(parse(arm).has_value()) << arm;
}

}  // namespace
}  // namespace mcrdl::coll
