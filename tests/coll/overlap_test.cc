// The overlap scheduler's contract: chunking exists only when overlap is on,
// interleaved chunk-chains finish a large composite in less virtual time
// than one serial chain, drain() retires every live chain, and both
// execution engines agree on the resulting virtual clock — chains are driven
// from actor context, so engine choice must not leak into completion times.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

McrDlOptions coll_opts(bool overlap, int chunks = 4) {
  McrDlOptions opts;
  opts.coll.enabled = true;
  opts.coll.overlap = overlap;
  opts.coll.chunks = chunks;
  return opts;
}

// One async hier allreduce of `elems` floats per rank, waited on; returns
// the cluster's final virtual time (per-rank values are checked inline).
SimTime run_one_composite(bool overlap, int elems,
                          sim::ExecutionConfig exec = sim::ExecutionConfig::serial()) {
  ClusterContext cluster(net::SystemConfig::lassen(2), exec);
  McrDl mcr(&cluster, coll_opts(overlap));
  mcr.init({"nccl", "mv2-gdr"});
  const double expect = static_cast<double>(cluster.world_size()) *
                        (cluster.world_size() + 1) / 2.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({elems}, DType::F32, static_cast<double>(rank + 1),
                            cluster.device(rank));
    Work w = api.all_reduce("hier:nccl+mv2-gdr", t, ReduceOp::Sum, /*async_op=*/true);
    w->wait();
    api.synchronize();
    EXPECT_DOUBLE_EQ(t.get(0), expect);
  });
  return cluster.scheduler().now();
}

TEST(OverlapScheduler, ChunksGateOnOverlapFlag) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl off(&cluster, coll_opts(/*overlap=*/false, /*chunks=*/4));
  off.init({"nccl"});
  ASSERT_TRUE(off.coll_enabled());
  EXPECT_FALSE(off.overlap_scheduler()->overlap_enabled());
  EXPECT_EQ(off.overlap_scheduler()->chunks(), 1);
  off.finalize();

  McrDl on(&cluster, coll_opts(/*overlap=*/true, /*chunks=*/4));
  on.init({"nccl"});
  EXPECT_TRUE(on.overlap_scheduler()->overlap_enabled());
  EXPECT_EQ(on.overlap_scheduler()->chunks(), 4);
}

TEST(OverlapScheduler, InterleavedChunksBeatSerialChain) {
  // Large enough that the per-chunk bandwidth term dominates the extra
  // per-sub-op latencies: pipelining one chunk's leader hop under another's
  // NVLink reduce must strictly shorten the critical path.
  constexpr int kElems = 1 << 20;
  const SimTime serial = run_one_composite(/*overlap=*/false, kElems);
  const SimTime overlapped = run_one_composite(/*overlap=*/true, kElems);
  EXPECT_LT(overlapped, serial)
      << "overlap=" << overlapped << "us vs serial=" << serial << "us";
}

TEST(OverlapScheduler, EnginesAgreeOnCompositeVirtualTime) {
  constexpr int kElems = 4096;
  const SimTime serial_engine =
      run_one_composite(/*overlap=*/true, kElems, sim::ExecutionConfig::serial());
  const SimTime parallel_engine =
      run_one_composite(/*overlap=*/true, kElems, sim::ExecutionConfig::parallel(4));
  EXPECT_DOUBLE_EQ(serial_engine, parallel_engine);
}

TEST(OverlapScheduler, SynchronizeDrainsEveryLiveChain) {
  ClusterContext cluster(net::SystemConfig::lassen(2));
  McrDl mcr(&cluster, coll_opts(/*overlap=*/true));
  mcr.init({"nccl", "mv2-gdr"});
  const double expect = static_cast<double>(cluster.world_size()) *
                        (cluster.world_size() + 1) / 2.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor a = Tensor::full({512}, DType::F32, static_cast<double>(rank + 1),
                            cluster.device(rank));
    Tensor b = Tensor::full({512}, DType::F32, static_cast<double>(rank + 1),
                            cluster.device(rank));
    // Two independent async composites, never waited on individually:
    // synchronize() must drive both chains (and their chunks) to completion.
    api.all_reduce("hier:nccl+mv2-gdr", a, ReduceOp::Sum, /*async_op=*/true);
    api.all_reduce("rsag:mv2-gdr", b, ReduceOp::Sum, /*async_op=*/true);
    api.synchronize();
    EXPECT_DOUBLE_EQ(a.get(0), expect);
    EXPECT_DOUBLE_EQ(b.get(0), expect);
    EXPECT_EQ(mcr.overlap_scheduler()->live_chains(rank), 0u)
        << "synchronize left live chains registered on rank " << rank;
  });
}

}  // namespace
}  // namespace mcrdl
