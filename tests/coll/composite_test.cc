// Composite collective correctness: a hierarchical or reduce-scatter+
// allgather allreduce must produce exactly the data a flat allreduce does —
// on the world, on sub-communicators, sync or async — and the runtime must
// reject composite strings it cannot honour (wrong op, unknown backend,
// subsystem disabled). Also pins that "auto" with tuner arms converges to a
// composite for large messages on a multi-node machine, the acceptance
// criterion of DESIGN.md §15.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"

namespace mcrdl {
namespace {

class CompositeTest : public ::testing::Test {
 protected:
  void make(int nodes, McrDlOptions opts) {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(nodes));
    mcr_ = std::make_unique<McrDl>(cluster_.get(), opts);
  }
  static McrDlOptions coll_opts() {
    McrDlOptions opts;
    opts.coll.enabled = true;
    return opts;
  }
  int world() const { return cluster_->world_size(); }

  // Runs one allreduce-sum of `elems` floats (rank r starts at r+1) on every
  // rank through `algo` and returns the final per-rank values.
  std::vector<double> run_allreduce(const std::string& algo, int elems, bool async) {
    std::vector<double> finals(static_cast<std::size_t>(world()), 0.0);
    cluster_->run_spmd([&](int rank) {
      Api api = mcr_->on(rank);
      Tensor t = Tensor::full({elems}, DType::F32, static_cast<double>(rank + 1),
                              cluster_->device(rank));
      Work w = api.all_reduce(algo, t, ReduceOp::Sum, async);
      if (async) w->wait();
      api.synchronize();
      finals[static_cast<std::size_t>(rank)] = t.get(0);
    });
    return finals;
  }

  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<McrDl> mcr_;
};

double world_sum(int world) { return static_cast<double>(world) * (world + 1) / 2.0; }

TEST_F(CompositeTest, HierMatchesFlatAllreduce) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  for (const double v : run_allreduce("hier:nccl+mv2-gdr", 64, /*async=*/false)) {
    EXPECT_DOUBLE_EQ(v, world_sum(world()));
  }
}

TEST_F(CompositeTest, HierSingleNodeDegeneratesToIntraOnly) {
  // One node: no leader hop exists — the composite is intra reduce +
  // broadcast and must still equal the flat result.
  make(1, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  for (const double v : run_allreduce("hier:nccl+mv2-gdr", 64, /*async=*/false)) {
    EXPECT_DOUBLE_EQ(v, world_sum(world()));
  }
}

TEST_F(CompositeTest, RsagMatchesFlatIncludingNonDivisibleLength) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  // 13 elements over 8 ranks: the padded reduce-scatter and the slice-back
  // finalize must leave exactly the unpadded prefix reduced.
  for (const double v : run_allreduce("rsag:mv2-gdr", 13, /*async=*/false)) {
    EXPECT_DOUBLE_EQ(v, world_sum(world()));
  }
}

TEST_F(CompositeTest, BareRsagUsesDefaultBackend) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  for (const double v : run_allreduce("rsag", 64, /*async=*/false)) {
    EXPECT_DOUBLE_EQ(v, world_sum(world()));
  }
}

TEST_F(CompositeTest, AsyncCompositeCompletesOnWait) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  for (const double v : run_allreduce("hier:nccl+mv2-gdr", 64, /*async=*/true)) {
    EXPECT_DOUBLE_EQ(v, world_sum(world()));
  }
}

TEST_F(CompositeTest, SubgroupCompositeReducesOnlyMembers) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  // Two ranks per node (lassen is 4 per node): the derived partition has two
  // single-leader intra groups and a two-rank leader hop.
  const std::vector<int> members = {0, 1, 4, 5};
  std::vector<double> finals(static_cast<std::size_t>(world()), 0.0);
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({32}, DType::F32, static_cast<double>(rank + 1),
                            cluster_->device(rank));
    const bool member = std::find(members.begin(), members.end(), rank) != members.end();
    if (member) {
      Api sub = api.group(members);
      sub.all_reduce("hier:nccl+mv2-gdr", t, ReduceOp::Sum);
    }
    api.synchronize();
    finals[static_cast<std::size_t>(rank)] = t.get(0);
  });
  const double member_sum = 1.0 + 2.0 + 5.0 + 6.0;
  for (int r = 0; r < world(); ++r) {
    const bool member = std::find(members.begin(), members.end(), r) != members.end();
    EXPECT_DOUBLE_EQ(finals[static_cast<std::size_t>(r)],
                     member ? member_sum : static_cast<double>(r + 1));
  }
}

TEST_F(CompositeTest, SingleRankGroupIsIdentity) {
  make(1, coll_opts());
  mcr_->init({"nccl"});
  cluster_->run_spmd([&](int rank) {
    if (rank != 0) return;
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({8}, DType::F32, 7.0, cluster_->device(rank));
    Api solo = api.group({0});
    Work w = solo.all_reduce("hier:nccl+nccl", t, ReduceOp::Sum);
    ASSERT_NE(w, nullptr);
    EXPECT_TRUE(w->test());
    EXPECT_DOUBLE_EQ(t.get(0), 7.0);
  });
}

TEST_F(CompositeTest, CompositeOnNonAllreduceThrows) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({8}, DType::F32, 1.0, cluster_->device(rank));
    EXPECT_THROW(api.broadcast("hier:nccl+mv2-gdr", t, /*root=*/0), InvalidArgument);
  });
}

TEST_F(CompositeTest, CompositeNamingUninitialisedBackendThrows) {
  make(2, coll_opts());
  mcr_->init({"nccl", "mv2-gdr"});
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({8}, DType::F32, 1.0, cluster_->device(rank));
    EXPECT_THROW(api.all_reduce("hier:nccl+bogus", t), InvalidArgument);
    EXPECT_THROW(api.all_reduce("rsag:bogus", t), InvalidArgument);
  });
}

TEST_F(CompositeTest, DisabledSubsystemRejectsCompositeStrings) {
  make(2, McrDlOptions{});  // coll.enabled defaults to false
  mcr_->init({"nccl", "mv2-gdr"});
  EXPECT_FALSE(mcr_->coll_enabled());
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({8}, DType::F32, 1.0, cluster_->device(rank));
    // Rejected exactly like any unknown backend name — the disabled
    // subsystem must not even recognise the grammar.
    EXPECT_THROW(api.all_reduce("hier:nccl+mv2-gdr", t), InvalidArgument);
  });
}

TEST_F(CompositeTest, AutoWithTunerArmsConvergesToAComposite) {
  McrDlOptions opts = coll_opts();
  opts.coll.tuner_arms = true;
  opts.online_tuning.enabled = true;
  opts.online_tuning.explore_period = 4;  // probe all arms quickly
  make(2, opts);
  mcr_->init({"nccl", "mv2-gdr"});
  ASSERT_NE(mcr_->online_tuner(), nullptr);

  // 16 MiB gradients on two lassen nodes: the rail-striped leader hop makes
  // the hierarchical arms measurably cheaper than any flat backend (past the
  // tuner's switch hysteresis), so the measured-best incumbent must end on a
  // composite arm.
  constexpr int kElems = 4 * 1024 * 1024;
  constexpr int kIters = 80;
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::phantom({kElems}, DType::F32, cluster_->device(rank));
    for (int i = 0; i < kIters; ++i) {
      api.all_reduce("auto", t, ReduceOp::Sum);
      // Stream-backend completions are observed off the host path; sync each
      // step so every decision sees the previous step's measurements — the
      // cadence of a real training loop.
      api.synchronize();
    }
  });

  bool composite_incumbent = false;
  for (const auto& arm : mcr_->online_tuner()->arms()) {
    if (arm.op == OpType::AllReduce && arm.incumbent && coll::parse(arm.backend).has_value()) {
      composite_incumbent = true;
    }
  }
  EXPECT_TRUE(composite_incumbent)
      << "online tuner did not converge to a composite arm for large allreduces";
}

}  // namespace
}  // namespace mcrdl
