// Elastic recovery across in-flight composites: a rank loss mid-chain must
// leave survivors agreeing on the reduced data (sync composites replay
// through the parent recover stage, async ones through the chain's own
// redispatch closure), and a later rejoin grows the world back under both
// execution engines. Runs on mv2-gdr at both levels — host-synchronous, so
// errors surface to the issuing rank, mirroring tests/fault/recovery_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"
#include "src/fault/recovery.h"

namespace mcrdl {
namespace {

constexpr const char* kAlgo = "hier:mv2-gdr+mv2-gdr";

// The deterministic loss recipe from tests/fault/recovery_test.cc: the dying
// rank goes silent shortly before it is declared lost, so peers are parked
// in a pending rendezvous (here: mid-chain) when the loss event fires. The
// straggler window is bounded at the loss instant so the rank can rejoin.
void add_loss(fault::FaultPlan& plan, int rank, SimTime at) {
  plan.specs.push_back(
      fault::FaultSpec::straggler(rank, 10 * at, /*from_us=*/at * 0.8, /*until_us=*/at));
  plan.specs.push_back(fault::FaultSpec::lose_rank(rank, at));
}

struct ElasticRun {
  std::vector<double> finals;   // final tensor value per rank (0 = did not finish)
  std::vector<double> spreads;  // max-min over sampled elements (0 = tensor uniform)
  std::vector<int> died;        // int, not bool: same-instant actors write concurrently
};

// `iters` composite allreduce-sum iterations, 400us apart, starting from
// rank+1; dead ranks unwind via RankLostError or the loss predicate.
ElasticRun run_elastic(McrDl& mcr, ClusterContext& cluster, int iters, bool async,
                       const char* algo = kAlgo, std::int64_t numel = 64) {
  ElasticRun out;
  const auto world = static_cast<std::size_t>(cluster.world_size());
  out.finals.assign(world, 0.0);
  out.spreads.assign(world, 0.0);
  out.died.assign(world, 0);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({numel}, DType::F32, static_cast<double>(rank + 1),
                            cluster.device(rank));
    for (int i = 0; i < iters; ++i) {
      if (cluster.faults().rank_lost(rank)) {
        out.died[static_cast<std::size_t>(rank)] = 1;
        return;
      }
      try {
        Work w = api.all_reduce(algo, t, ReduceOp::Sum, async);
        if (async) w->wait();
      } catch (const RankLostError&) {
        out.died[static_cast<std::size_t>(rank)] = 1;
        return;
      }
      cluster.scheduler().sleep_for(400.0);
    }
    api.synchronize();
    // Inputs are per-rank uniform, so every correct sum-allreduce schedule
    // leaves the tensor uniform. A recovery that replays at slice
    // granularity instead of op granularity shows up right here: chunk
    // slices published before the loss disagree with replayed ones (one
    // element sampled per possible chunk, plus both ends).
    double lo = t.get(0), hi = lo;
    for (std::int64_t idx :
         {numel / 8, 3 * numel / 8, 5 * numel / 8, 7 * numel / 8, numel - 1}) {
      const double v = t.get(idx);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    out.spreads[static_cast<std::size_t>(rank)] = hi - lo;
    out.finals[static_cast<std::size_t>(rank)] = t.get(0);
  });
  return out;
}

// Virtual time one clean composite allreduce of `numel` elements takes on a
// fresh cluster — used to pin a loss instant *inside* a composite without
// hardcoding cost-model constants: the straggler lead-in then covers only
// the tail of the op, so early chunk-chains complete before the loss and
// late ones park mid-rendezvous.
SimTime measure_composite(const char* algo, int nodes, std::int64_t numel) {
  ClusterContext cluster(net::SystemConfig::lassen(nodes), sim::ExecutionConfig::serial());
  McrDlOptions opts;
  opts.coll.enabled = true;
  opts.coll.overlap = true;
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});
  SimTime dur = 0.0;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({numel}, DType::F32, static_cast<double>(rank + 1),
                            cluster.device(rank));
    api.all_reduce(algo, t, ReduceOp::Sum);
    api.synchronize();
    if (rank == 0) dur = cluster.scheduler().now();
  });
  return dur;
}

// Survivors agree and their value is explainable as k full-world iterations
// followed by iters-k shrunk-world ones (same invariant recovery_test pins
// for flat allreduces — composites must not weaken it).
void check_survivor_value(const ElasticRun& run, int world, int iters) {
  std::vector<int> survivors;
  for (int r = 0; r < world; ++r) {
    if (!run.died[static_cast<std::size_t>(r)]) survivors.push_back(r);
  }
  ASSERT_FALSE(survivors.empty());
  const double got = run.finals[static_cast<std::size_t>(survivors.front())];
  for (int r : survivors) {
    EXPECT_DOUBLE_EQ(run.finals[static_cast<std::size_t>(r)], got)
        << "survivors diverged at rank " << r;
    EXPECT_DOUBLE_EQ(run.spreads[static_cast<std::size_t>(r)], 0.0)
        << "rank " << r << " tensor is not uniform: chunk slices saw different memberships";
  }
  const double m = static_cast<double>(world);
  const double w = static_cast<double>(survivors.size());
  double sub_sum = 0.0;
  for (int r : survivors) sub_sum += static_cast<double>(r + 1);
  bool matched = false;
  for (int k = 0; k <= iters && !matched; ++k) {
    const double candidate =
        k == 0 ? sub_sum * std::pow(w, iters - 1)
               : (m * (m + 1) / 2.0) * std::pow(m, k - 1) * std::pow(w, iters - k);
    matched = got == candidate;
  }
  std::string dump;
  for (int r = 0; r < world; ++r) {
    dump += " rank" + std::to_string(r) + "=" +
            std::to_string(run.finals[static_cast<std::size_t>(r)]) +
            (run.died[static_cast<std::size_t>(r)] ? "(died)" : "") +
            " spread=" + std::to_string(run.spreads[static_cast<std::size_t>(r)]);
  }
  EXPECT_TRUE(matched) << "survivor value " << got
                       << " is not a full-world/shrunk-world iteration split;" << dump;
}

class ElasticCollTest : public ::testing::TestWithParam<sim::ExecutionConfig> {
 protected:
  void make(int nodes, McrDlOptions opts) {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(nodes), GetParam());
    mcr_ = std::make_unique<McrDl>(cluster_.get(), opts);
  }
  static McrDlOptions elastic_opts(bool overlap) {
    McrDlOptions opts;
    opts.coll.enabled = true;
    opts.coll.overlap = overlap;
    opts.fault.enabled = true;
    return opts;
  }

  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<McrDl> mcr_;
};

std::string config_name(const ::testing::TestParamInfo<sim::ExecutionConfig>& info) {
  return info.param.kind == sim::ExecutionModelKind::SerialBaton
             ? "serial"
             : "parallel" + std::to_string(info.param.threads);
}

TEST_P(ElasticCollTest, ShrinkMidSyncCompositeSurvivorsAgree) {
  McrDlOptions opts = elastic_opts(/*overlap=*/false);
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  make(2, opts);
  mcr_->init({"mv2-gdr"});
  ASSERT_TRUE(mcr_->recovery().armed());

  const ElasticRun run = run_elastic(*mcr_, *cluster_, /*iters=*/10, /*async=*/false);
  EXPECT_TRUE(run.died[1]);
  check_survivor_value(run, cluster_->world_size(), 10);
  const fault::RecoveryStats& stats = mcr_->recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 1u);
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_GT(stats.recovered_ops, 0u);
}

TEST_P(ElasticCollTest, ShrinkMidAsyncOverlappedCompositeSurvivorsAgree) {
  // Async + overlap: the failure lands on chunk-chains whose parent pipeline
  // frame is long gone — recovery must flow through the chains' redispatch
  // closures, and the stale-epoch sweep must bounce the cancelled chunks.
  McrDlOptions opts = elastic_opts(/*overlap=*/true);
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  make(2, opts);
  mcr_->init({"mv2-gdr"});

  const ElasticRun run = run_elastic(*mcr_, *cluster_, /*iters=*/10, /*async=*/true);
  EXPECT_TRUE(run.died[1]);
  check_survivor_value(run, cluster_->world_size(), 10);
  EXPECT_EQ(mcr_->recovery().stats().epochs, 1u);
}

// The sync x overlap cell of the matrix, with a payload big enough that the
// loss instant falls between chunk-chain completions: chunks that finished
// before the loss already published full-world sums into their slices (and
// cannot be failed — their restore ran out on completion), while the parked
// ones bounce for replay. The whole-tensor replay through the parent
// pipeline's recover stage must start from pristine bytes for *every* slice
// — per-chunk restores would let it re-reduce the completed slices into
// survivors*old_sum.
TEST_P(ElasticCollTest, ShrinkMidSyncOverlappedCompositeSurvivorsAgree) {
  constexpr std::int64_t kNumel = 1 << 18;
  const SimTime dur = measure_composite(kAlgo, /*nodes=*/2, kNumel);
  McrDlOptions opts = elastic_opts(/*overlap=*/true);
  // No straggler lead-in: a per-rank slowdown desynchronises the two nodes'
  // closing broadcasts, making the composite complete on one node and fail
  // on the other — a different (cross-rank) scenario. A bare loss instant
  // keeps completion cross-rank atomic and lands between chunk completions.
  opts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(1, 0.6 * dur));
  make(2, opts);
  mcr_->init({"mv2-gdr"});

  const ElasticRun run = run_elastic(*mcr_, *cluster_, /*iters=*/6, /*async=*/false,
                                     kAlgo, kNumel);
  EXPECT_TRUE(run.died[1]);
  check_survivor_value(run, cluster_->world_size(), 6);
  EXPECT_EQ(mcr_->recovery().stats().epochs, 1u);
  EXPECT_GT(mcr_->recovery().stats().recovered_ops, 0u);
}

// Same straddled-loss shape, async: completed chunks keep their handles, the
// failed ones flow through the shared recover closure — which must replay
// the *whole* tensor exactly once, not each failed slice on the shrunk group
// (that would leave one tensor mixing two memberships).
TEST_P(ElasticCollTest, ShrinkMidAsyncOverlappedCompositeOpGranularityReplay) {
  constexpr std::int64_t kNumel = 1 << 18;
  const SimTime dur = measure_composite(kAlgo, /*nodes=*/2, kNumel);
  McrDlOptions opts = elastic_opts(/*overlap=*/true);
  opts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(1, 0.6 * dur));
  make(2, opts);
  mcr_->init({"mv2-gdr"});

  const ElasticRun run = run_elastic(*mcr_, *cluster_, /*iters=*/6, /*async=*/true,
                                     kAlgo, kNumel);
  EXPECT_TRUE(run.died[1]);
  check_survivor_value(run, cluster_->world_size(), 6);
  EXPECT_EQ(mcr_->recovery().stats().epochs, 1u);
}

// rsag publishes each chunk's reduced slice in its success-path finalize, so
// chunked rsag needs the shared whole-tensor restore exactly like hier's
// in-place phases do (unchunked rsag replays cleanly without one).
TEST_P(ElasticCollTest, ShrinkMidOverlappedRsagSurvivorsAgree) {
  constexpr const char* kRsag = "rsag:mv2-gdr";
  constexpr std::int64_t kNumel = 1 << 18;
  const SimTime dur = measure_composite(kRsag, /*nodes=*/2, kNumel);
  McrDlOptions opts = elastic_opts(/*overlap=*/true);
  opts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(1, 0.6 * dur));
  make(2, opts);
  mcr_->init({"mv2-gdr"});

  const ElasticRun run = run_elastic(*mcr_, *cluster_, /*iters=*/6, /*async=*/false,
                                     kRsag, kNumel);
  EXPECT_TRUE(run.died[1]);
  check_survivor_value(run, cluster_->world_size(), 6);
  EXPECT_EQ(mcr_->recovery().stats().epochs, 1u);
}

TEST_P(ElasticCollTest, ShrinkThenRejoinAcrossComposites) {
  // Phase one absorbs the loss mid-composite; everyone parks past the rejoin
  // instant (virtual-time barrier); phase two's full-world composite
  // allreduce equalises every participant including the returnee.
  McrDlOptions opts = elastic_opts(/*overlap=*/true);
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  opts.fault.plan.specs.push_back(fault::FaultSpec::rejoin_rank(1, 30000.0));
  make(1, opts);  // 4 ranks
  mcr_->init({"mv2-gdr"});

  const auto world = static_cast<std::size_t>(cluster_->world_size());
  std::vector<double> finals(world, 0.0);
  cluster_->run_spmd([&](int rank) {
    Api api = mcr_->on(rank);
    Tensor t = Tensor::full({64}, DType::F32, static_cast<double>(rank + 1),
                            cluster_->device(rank));
    for (int i = 0; i < 5; ++i) {
      if (cluster_->faults().rank_lost(rank)) break;
      try {
        api.all_reduce(kAlgo, t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        break;
      }
      cluster_->scheduler().sleep_for(400.0);
    }
    const SimTime wake = 30000.0 + 401.0;
    if (cluster_->scheduler().now() < wake) {
      cluster_->scheduler().sleep_for(wake - cluster_->scheduler().now());
    }
    for (int i = 0; i < 3; ++i) {
      if (cluster_->faults().rank_lost(rank)) return;
      try {
        api.all_reduce(kAlgo, t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        return;
      }
      cluster_->scheduler().sleep_for(400.0);
    }
    api.synchronize();
    finals[static_cast<std::size_t>(rank)] = t.get(0);
  });

  // The rejoin restored the full world: every rank finished phase two and
  // the closing full-world allreduces left them all agreeing.
  const double got = finals[0];
  EXPECT_GT(got, 0.0);
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_DOUBLE_EQ(finals[r], got) << "rank " << r << " diverged after rejoin";
  }
  EXPECT_GE(mcr_->recovery().stats().epochs, 2u);  // shrink + grow
  EXPECT_EQ(mcr_->recovery().survivors(),
            (std::vector<int>{0, 1, 2, 3}));
}

INSTANTIATE_TEST_SUITE_P(Engines, ElasticCollTest,
                         ::testing::Values(sim::ExecutionConfig::serial(),
                                           sim::ExecutionConfig::parallel(4)),
                         config_name);

}  // namespace
}  // namespace mcrdl
