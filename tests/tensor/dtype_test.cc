// Tests for dtype metadata and the 16-bit float conversion routines.
#include "src/tensor/dtype.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mcrdl {
namespace {

TEST(DType, Sizes) {
  EXPECT_EQ(dtype_size(DType::F16), 2u);
  EXPECT_EQ(dtype_size(DType::BF16), 2u);
  EXPECT_EQ(dtype_size(DType::F32), 4u);
  EXPECT_EQ(dtype_size(DType::F64), 8u);
  EXPECT_EQ(dtype_size(DType::I32), 4u);
  EXPECT_EQ(dtype_size(DType::I64), 8u);
  EXPECT_EQ(dtype_size(DType::U8), 1u);
}

TEST(DType, Names) {
  EXPECT_STREQ(dtype_name(DType::F16), "f16");
  EXPECT_STREQ(dtype_name(DType::BF16), "bf16");
  EXPECT_STREQ(dtype_name(DType::I64), "i64");
}

TEST(DType, FloatingPredicate) {
  EXPECT_TRUE(is_floating(DType::F16));
  EXPECT_TRUE(is_floating(DType::F64));
  EXPECT_FALSE(is_floating(DType::I32));
  EXPECT_FALSE(is_floating(DType::U8));
}

TEST(Half, RoundTripExactValues) {
  // All these values are exactly representable in binary16.
  for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(half_to_float(float_to_half(f)), f) << f;
  }
}

TEST(Half, SignedZero) {
  EXPECT_EQ(float_to_half(-0.0f), 0x8000u);
  EXPECT_EQ(half_to_float(0x8000u), -0.0f);
  EXPECT_TRUE(std::signbit(half_to_float(0x8000u)));
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e6f))));
  EXPECT_LT(half_to_float(float_to_half(-1e6f)), 0.0f);
}

TEST(Half, InfinityAndNanPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(inf))));
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(std::nanf("")))));
}

TEST(Half, SubnormalRange) {
  // Smallest positive half subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(half_to_float(float_to_half(tiny)), tiny);
  // Values below half the smallest subnormal flush to zero.
  EXPECT_EQ(half_to_float(float_to_half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Half, RoundingErrorBounded) {
  // Relative error of a binary16 round-trip is at most 2^-11 for normals.
  for (float f = 0.001f; f < 100.0f; f *= 1.37f) {
    const float rt = half_to_float(float_to_half(f));
    EXPECT_NEAR(rt, f, f * (1.0f / 1024.0f)) << f;
  }
}

TEST(BFloat16, RoundTripExactValues) {
  for (float f : {0.0f, 1.0f, -2.0f, 256.0f, 1.5f, -0.375f}) {
    EXPECT_EQ(bfloat16_to_float(float_to_bfloat16(f)), f) << f;
  }
}

TEST(BFloat16, PreservesFloatRange) {
  // bfloat16 keeps the full float32 exponent range.
  EXPECT_FALSE(std::isinf(bfloat16_to_float(float_to_bfloat16(1e38f))));
  EXPECT_TRUE(std::isnan(bfloat16_to_float(float_to_bfloat16(std::nanf("")))));
}

TEST(BFloat16, RoundingErrorBounded) {
  for (float f = 0.001f; f < 1e6f; f *= 2.71f) {
    const float rt = bfloat16_to_float(float_to_bfloat16(f));
    EXPECT_NEAR(rt, f, f * (1.0f / 128.0f)) << f;
  }
}

}  // namespace
}  // namespace mcrdl
