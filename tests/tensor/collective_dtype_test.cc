// Property sweep: collective data correctness across every dtype — the
// elementwise reduction math and block shuffles must round-trip through the
// 16-bit float formats and integer types, not just f32/f64.
#include <gtest/gtest.h>

#include <memory>

#include "src/backends/backend.h"

namespace mcrdl {
namespace {

class DtypeCollectiveTest : public ::testing::TestWithParam<DType> {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<ClusterContext>(net::SystemConfig::lassen(1));  // 4 ranks
    backend_ = make_backend("mv2-gdr", cluster_.get());
    backend_->init();
  }
  std::unique_ptr<ClusterContext> cluster_;
  std::unique_ptr<Backend> backend_;
};

TEST_P(DtypeCollectiveTest, AllReduceSumExactForSmallIntegers) {
  const DType dt = GetParam();
  cluster_->run_spmd([&](int rank) {
    // Small integer values are exactly representable in every dtype,
    // including f16/bf16 and u8 (sum 1+2+3+4 = 10 fits everywhere).
    Tensor t = Tensor::full({8}, dt, rank + 1.0, cluster_->device(rank));
    backend_->world()->all_reduce(rank, t, ReduceOp::Sum, false);
    for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(t.get(i), 10.0) << dtype_name(dt);
  });
}

TEST_P(DtypeCollectiveTest, BroadcastPreservesBits) {
  const DType dt = GetParam();
  cluster_->run_spmd([&](int rank) {
    Tensor t = rank == 0 ? Tensor::arange(16, dt, cluster_->device(rank))
                         : Tensor::zeros({16}, dt, cluster_->device(rank));
    backend_->world()->broadcast(rank, t, 0, false);
    for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(t.get(i), i) << dtype_name(dt);
  });
}

TEST_P(DtypeCollectiveTest, AllToAllSingleShufflesBlocks) {
  const DType dt = GetParam();
  cluster_->run_spmd([&](int rank) {
    Tensor in = Tensor::zeros({4}, dt, cluster_->device(rank));
    for (int j = 0; j < 4; ++j) in.set(j, rank * 4.0 + j);
    Tensor out = Tensor::zeros({4}, dt, cluster_->device(rank));
    backend_->world()->all_to_all_single(rank, out, in, false);
    for (int src = 0; src < 4; ++src) {
      EXPECT_DOUBLE_EQ(out.get(src), src * 4.0 + rank) << dtype_name(dt);
    }
  });
}

TEST_P(DtypeCollectiveTest, ReduceScatterMax) {
  const DType dt = GetParam();
  cluster_->run_spmd([&](int rank) {
    Tensor in = Tensor::zeros({4}, dt, cluster_->device(rank));
    for (int j = 0; j < 4; ++j) in.set(j, (rank + j) % 4);
    Tensor out = Tensor::zeros({1}, dt, cluster_->device(rank));
    backend_->world()->reduce_scatter(rank, out, in, ReduceOp::Max, false);
    EXPECT_DOUBLE_EQ(out.get(0), 3.0) << dtype_name(dt);
  });
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, DtypeCollectiveTest,
                         ::testing::Values(DType::F16, DType::BF16, DType::F32, DType::F64,
                                           DType::I32, DType::I64, DType::U8),
                         [](const ::testing::TestParamInfo<DType>& info) {
                           return dtype_name(info.param);
                         });

}  // namespace
}  // namespace mcrdl
