// Tests for the Tensor type: factories, element access, views, bulk ops,
// reductions across all dtypes, and phantom-tensor semantics.
#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace mcrdl {
namespace {

TEST(Tensor, ZerosFactory) {
  Tensor t = Tensor::zeros({2, 3}, DType::F32, nullptr);
  EXPECT_TRUE(t.defined());
  EXPECT_TRUE(t.materialized());
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.bytes(), 24u);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(t.get(i), 0.0);
}

TEST(Tensor, UndefinedTensor) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_THROW(t.get(0), Error);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({4}, DType::F64, 3.25, nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t.get(i), 3.25);
  t.fill(-1.0);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t.get(i), -1.0);
}

TEST(Tensor, Arange) {
  Tensor t = Tensor::arange(5, DType::I64, nullptr);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(t.get(i), i);
}

TEST(Tensor, RandomUniformBoundsAndDeterminism) {
  Rng r1(99), r2(99);
  Tensor a = Tensor::random_uniform({100}, DType::F32, nullptr, r1, -2.0, 2.0);
  Tensor b = Tensor::random_uniform({100}, DType::F32, nullptr, r2, -2.0, 2.0);
  EXPECT_TRUE(a.allclose(b));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(a.get(i), -2.0);
    EXPECT_LT(a.get(i), 2.0);
  }
}

TEST(Tensor, SetGetRoundTripPerDtype) {
  for (DType dt : {DType::F16, DType::BF16, DType::F32, DType::F64, DType::I32, DType::I64,
                   DType::U8}) {
    Tensor t = Tensor::zeros({3}, dt, nullptr);
    t.set(1, 2.0);
    EXPECT_DOUBLE_EQ(t.get(1), 2.0) << dtype_name(dt);
    EXPECT_DOUBLE_EQ(t.get(0), 0.0) << dtype_name(dt);
  }
}

TEST(Tensor, IndexOutOfRange) {
  Tensor t = Tensor::zeros({2}, DType::F32, nullptr);
  EXPECT_THROW(t.get(2), InvalidArgument);
  EXPECT_THROW(t.get(-1), InvalidArgument);
  EXPECT_THROW(t.set(5, 0.0), InvalidArgument);
}

TEST(Tensor, ViewSharesStorage) {
  Tensor t = Tensor::arange(10, DType::F32, nullptr);
  Tensor v = t.view(3, 4);
  EXPECT_EQ(v.numel(), 4);
  EXPECT_DOUBLE_EQ(v.get(0), 3.0);
  EXPECT_DOUBLE_EQ(v.get(3), 6.0);
  v.set(0, 100.0);
  EXPECT_DOUBLE_EQ(t.get(3), 100.0);  // writes through to the base tensor
}

TEST(Tensor, ViewOfViewComposesOffsets) {
  Tensor t = Tensor::arange(10, DType::F32, nullptr);
  Tensor v = t.view(2, 6).view(1, 3);
  EXPECT_DOUBLE_EQ(v.get(0), 3.0);
  EXPECT_DOUBLE_EQ(v.get(2), 5.0);
}

TEST(Tensor, ViewBoundsChecked) {
  Tensor t = Tensor::zeros({4}, DType::F32, nullptr);
  EXPECT_THROW(t.view(2, 3), InvalidArgument);
  EXPECT_THROW(t.view(-1, 2), InvalidArgument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::arange(4, DType::F32, nullptr);
  Tensor c = t.clone();
  c.set(0, 42.0);
  EXPECT_DOUBLE_EQ(t.get(0), 0.0);
  EXPECT_DOUBLE_EQ(c.get(0), 42.0);
}

TEST(Tensor, CopyFromChecksShapeAndDtype) {
  Tensor a = Tensor::zeros({4}, DType::F32, nullptr);
  Tensor b = Tensor::arange(4, DType::F32, nullptr);
  a.copy_from(b);
  EXPECT_TRUE(a.allclose(b));
  Tensor wrong_size = Tensor::zeros({5}, DType::F32, nullptr);
  EXPECT_THROW(a.copy_from(wrong_size), InvalidArgument);
  Tensor wrong_type = Tensor::zeros({4}, DType::F64, nullptr);
  EXPECT_THROW(a.copy_from(wrong_type), InvalidArgument);
}

TEST(Tensor, CopyFromOverlappingViewsIsSafe) {
  Tensor t = Tensor::arange(6, DType::F32, nullptr);
  Tensor dst = t.view(0, 4);
  Tensor src = t.view(2, 4);
  dst.copy_from(src);  // memmove semantics
  EXPECT_DOUBLE_EQ(t.get(0), 2.0);
  EXPECT_DOUBLE_EQ(t.get(3), 5.0);
}

TEST(Tensor, ReduceInplaceAllOps) {
  auto make = [](std::initializer_list<double> vals) {
    Tensor t = Tensor::zeros({static_cast<std::int64_t>(vals.size())}, DType::F64, nullptr);
    std::int64_t i = 0;
    for (double v : vals) t.set(i++, v);
    return t;
  };
  {
    Tensor a = make({1, 2, 3});
    a.reduce_inplace(make({10, 20, 30}), ReduceOp::Sum);
    EXPECT_EQ(a.to_vector(), (std::vector<double>{11, 22, 33}));
  }
  {
    Tensor a = make({2, 3, 4});
    a.reduce_inplace(make({5, 6, 7}), ReduceOp::Prod);
    EXPECT_EQ(a.to_vector(), (std::vector<double>{10, 18, 28}));
  }
  {
    Tensor a = make({1, 9, 5});
    a.reduce_inplace(make({3, 2, 5}), ReduceOp::Min);
    EXPECT_EQ(a.to_vector(), (std::vector<double>{1, 2, 5}));
  }
  {
    Tensor a = make({1, 9, 5});
    a.reduce_inplace(make({3, 2, 5}), ReduceOp::Max);
    EXPECT_EQ(a.to_vector(), (std::vector<double>{3, 9, 5}));
  }
}

TEST(Tensor, ScaleForAverage) {
  Tensor a = Tensor::full({3}, DType::F32, 8.0, nullptr);
  a.scale(0.25);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a.get(i), 2.0);
}

TEST(Tensor, AllcloseTolerances) {
  Tensor a = Tensor::full({2}, DType::F64, 1.0, nullptr);
  Tensor b = Tensor::full({2}, DType::F64, 1.0 + 1e-9, nullptr);
  EXPECT_TRUE(a.allclose(b));
  Tensor c = Tensor::full({2}, DType::F64, 1.1, nullptr);
  EXPECT_FALSE(a.allclose(c));
  Tensor different_size = Tensor::zeros({3}, DType::F64, nullptr);
  EXPECT_FALSE(a.allclose(different_size));
}

// --- phantom semantics -------------------------------------------------------

TEST(Tensor, PhantomMetadata) {
  Tensor p = Tensor::phantom({1024, 1024}, DType::F16, nullptr);
  EXPECT_TRUE(p.defined());
  EXPECT_FALSE(p.materialized());
  EXPECT_EQ(p.numel(), 1024 * 1024);
  EXPECT_EQ(p.bytes(), 2u * 1024 * 1024);
}

TEST(Tensor, PhantomElementAccessRejected) {
  Tensor p = Tensor::phantom({4}, DType::F32, nullptr);
  EXPECT_THROW(p.get(0), InvalidArgument);
  EXPECT_THROW(p.set(0, 1.0), InvalidArgument);
  EXPECT_THROW(p.to_vector(), InvalidArgument);
  EXPECT_THROW(p.raw_data(), InvalidArgument);
}

TEST(Tensor, PhantomBulkOpsAreNoOps) {
  Tensor p = Tensor::phantom({4}, DType::F32, nullptr);
  Tensor real = Tensor::arange(4, DType::F32, nullptr);
  p.fill(1.0);
  p.copy_from(real);
  p.reduce_inplace(real, ReduceOp::Sum);
  p.scale(2.0);
  real.copy_from(p);  // phantom source: destination unchanged
  EXPECT_DOUBLE_EQ(real.get(3), 3.0);
}

TEST(Tensor, PhantomViewAndCloneStayPhantom) {
  Tensor p = Tensor::phantom({8}, DType::F32, nullptr);
  EXPECT_FALSE(p.view(2, 4).materialized());
  EXPECT_EQ(p.view(2, 4).numel(), 4);
  EXPECT_FALSE(p.clone().materialized());
}

TEST(Tensor, PhantomHugeAllocationIsCheap) {
  // 4B parameters in f16 — the paper's DS-MoE model size; must not allocate.
  Tensor p = Tensor::phantom({4LL * 1000 * 1000 * 1000}, DType::F16, nullptr);
  EXPECT_EQ(p.bytes(), 8'000'000'000ull);
}

TEST(Tensor, Describe) {
  EXPECT_EQ(Tensor::zeros({2, 3}, DType::F32, nullptr).describe(), "Tensor(f32, [2,3])");
  EXPECT_EQ(Tensor::phantom({4}, DType::I32, nullptr).describe(), "Tensor(i32, [4], phantom)");
  EXPECT_EQ(Tensor().describe(), "Tensor(undefined)");
}

TEST(Tensor, TotalBytesOfList) {
  TensorList list;
  list.push_back(Tensor::zeros({4}, DType::F32, nullptr));
  list.push_back(Tensor::phantom({8}, DType::F64, nullptr));
  EXPECT_EQ(total_bytes(list), 16u + 64u);
}

TEST(Tensor, NegativeShapeRejected) {
  EXPECT_THROW(Tensor::zeros({-1}, DType::F32, nullptr), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl
