// FaultInjector / FaultPlan: deterministic decisions and plan round-trips.
#include "src/fault/injector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/scheduler.h"

namespace mcrdl::fault {
namespace {

FaultPlan transient_plan(std::uint64_t seed, double p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.specs.push_back(FaultSpec::transient("nccl", p));
  return plan;
}

std::vector<bool> decision_sequence(FaultInjector& inj, int n) {
  std::vector<bool> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(inj.should_fail("nccl", OpType::AllReduce));
  return out;
}

TEST(FaultInjector, DisabledByDefaultAndInert) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  EXPECT_FALSE(inj.enabled());
  EXPECT_FALSE(inj.should_fail("nccl", OpType::AllReduce));
  EXPECT_FALSE(inj.backend_unavailable("nccl"));
  EXPECT_TRUE(inj.link_beta_scale("nccl", OpType::AllReduce).identity());
  EXPECT_DOUBLE_EQ(inj.rank_launch_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.rank_delay(0), 0.0);
  EXPECT_DOUBLE_EQ(inj.watchdog_deadline_us(), 0.0);
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  sim::Scheduler sched;
  FaultInjector a(&sched);
  FaultInjector b(&sched);
  a.configure(transient_plan(42, 0.5));
  b.configure(transient_plan(42, 0.5));
  EXPECT_EQ(decision_sequence(a, 200), decision_sequence(b, 200));
}

TEST(FaultInjector, ReconfigureReplaysTheSameSequence) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  inj.configure(transient_plan(7, 0.3));
  const std::vector<bool> first = decision_sequence(inj, 100);
  inj.configure(transient_plan(7, 0.3));  // resets the rng stream
  EXPECT_EQ(decision_sequence(inj, 100), first);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  sim::Scheduler sched;
  FaultInjector a(&sched);
  FaultInjector b(&sched);
  a.configure(transient_plan(1, 0.5));
  b.configure(transient_plan(2, 0.5));
  EXPECT_NE(decision_sequence(a, 200), decision_sequence(b, 200));
}

TEST(FaultInjector, NonMatchingOpsDoNotConsumeTheStream) {
  // Decisions must depend only on the sequence of *matching* ops, so an
  // unrelated backend's traffic cannot perturb the injected fault pattern.
  sim::Scheduler sched;
  FaultInjector a(&sched);
  FaultInjector b(&sched);
  a.configure(transient_plan(9, 0.5));
  b.configure(transient_plan(9, 0.5));
  std::vector<bool> with_noise;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.should_fail("mv2-gdr", OpType::AllReduce));  // no matching spec
    with_noise.push_back(b.should_fail("nccl", OpType::AllReduce));
  }
  EXPECT_EQ(with_noise, decision_sequence(a, 100));
}

TEST(FaultInjector, ProbabilityEndpointsAreDeterministic) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  inj.configure(transient_plan(3, 1.0));
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(inj.should_fail("nccl", OpType::AllReduce));
  inj.configure(transient_plan(3, 0.0));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(inj.should_fail("nccl", OpType::AllReduce));
}

TEST(FaultInjector, TransientOpSpecOnlyHitsItsOp) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::transient_op("nccl", OpType::AllToAllSingle, 1.0));
  inj.configure(plan);
  EXPECT_FALSE(inj.should_fail("nccl", OpType::AllReduce));
  EXPECT_TRUE(inj.should_fail("nccl", OpType::AllToAllSingle));
}

TEST(FaultInjector, OutageStartsAtItsInstant) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::outage("nccl", 0.0));
  plan.specs.push_back(FaultSpec::outage("sccl", 1e9));  // far future
  inj.configure(plan);
  EXPECT_TRUE(inj.backend_unavailable("nccl"));
  EXPECT_FALSE(inj.backend_unavailable("sccl"));
  EXPECT_FALSE(inj.backend_unavailable("mv2-gdr"));
}

TEST(FaultInjector, LinkDegradationFactorsCompose) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::degrade_links("nccl", 4.0, LinkScope::InterNode));
  plan.specs.push_back(FaultSpec::degrade_links("", 2.0, LinkScope::All));
  inj.configure(plan);
  const BetaScale s = inj.link_beta_scale("nccl", OpType::AllReduce);
  EXPECT_DOUBLE_EQ(s.inter, 8.0);  // 4 (inter-only) * 2 (all links)
  EXPECT_DOUBLE_EQ(s.intra, 2.0);  // only the all-links spec
  const BetaScale other = inj.link_beta_scale("mv2-gdr", OpType::AllReduce);
  EXPECT_DOUBLE_EQ(other.inter, 2.0);
  EXPECT_DOUBLE_EQ(other.intra, 2.0);
}

TEST(FaultInjector, SlowdownAndStragglerTargetOneRank) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::slow_rank(2, 3.0));
  plan.specs.push_back(FaultSpec::straggler(1, 250.0));
  inj.configure(plan);
  EXPECT_DOUBLE_EQ(inj.rank_launch_scale(2), 3.0);
  EXPECT_DOUBLE_EQ(inj.rank_launch_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.rank_delay(1), 250.0);
  EXPECT_DOUBLE_EQ(inj.rank_delay(2), 0.0);
}

TEST(FaultInjector, WindowBoundsViaActiveAt) {
  const FaultSpec s = FaultSpec::transient("nccl", 0.5, 100.0, 200.0);
  EXPECT_FALSE(s.active_at(99.9));
  EXPECT_TRUE(s.active_at(100.0));
  EXPECT_TRUE(s.active_at(199.9));
  EXPECT_FALSE(s.active_at(200.0));  // end-exclusive
}

TEST(FaultInjector, FactoryValidation) {
  EXPECT_THROW(FaultSpec::transient("nccl", -0.1), InvalidArgument);
  EXPECT_THROW(FaultSpec::transient("nccl", 1.5), InvalidArgument);
  EXPECT_THROW(FaultSpec::degrade_links("nccl", 0.0), InvalidArgument);
  EXPECT_THROW(FaultSpec::slow_rank(0, 0.5), InvalidArgument);
  EXPECT_THROW(FaultSpec::straggler(0, -1.0), InvalidArgument);
}

TEST(FaultPlan, SerializeParseRoundTrip) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.watchdog_deadline_us = 5000.0;
  plan.specs.push_back(FaultSpec::transient("nccl", 0.25, 10.0, 500.0));
  plan.specs.push_back(FaultSpec::transient_op("", OpType::AllToAllSingle, 1.0));
  plan.specs.push_back(FaultSpec::outage("sccl", 750.0));
  plan.specs.push_back(FaultSpec::degrade_links("mv2-gdr", 2.5, LinkScope::InterNode, 0.0, 1e6));
  plan.specs.push_back(FaultSpec::slow_rank(3, 2.0));
  plan.specs.push_back(FaultSpec::straggler(1, 125.0, 50.0));
  const FaultPlan parsed = FaultPlan::parse(plan.serialize());
  // The text format is the canonical form, so a round-trip is exact.
  EXPECT_EQ(parsed.serialize(), plan.serialize());
  ASSERT_EQ(parsed.specs.size(), plan.specs.size());
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_DOUBLE_EQ(parsed.watchdog_deadline_us, plan.watchdog_deadline_us);
  EXPECT_EQ(parsed.specs[1].any_op, false);
  EXPECT_EQ(parsed.specs[1].op, OpType::AllToAllSingle);
  EXPECT_EQ(parsed.specs[3].scope, LinkScope::InterNode);
}

TEST(FaultPlan, ParseSkipsCommentsAndBlankLines) {
  const FaultPlan plan = FaultPlan::parse(
      "# a chaos scenario\n"
      "\n"
      "seed 99\n"
      "outage nccl 1000\n");
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.specs.size(), 1u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::Outage);
}

TEST(FaultPlan, ParseErrorsNameTheLine) {
  try {
    FaultPlan::parse("seed 1\nbogus nccl 0.5\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(FaultPlan, RankRejoinRoundTripsThroughText) {
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::lose_rank(3, 2500.0));
  plan.specs.push_back(FaultSpec::rejoin_rank(3, 9000.5));
  const FaultPlan parsed = FaultPlan::parse(plan.serialize());
  ASSERT_EQ(parsed.specs.size(), 2u);
  EXPECT_EQ(parsed.specs[0].kind, FaultKind::RankLoss);
  EXPECT_EQ(parsed.specs[1].kind, FaultKind::RankRejoin);
  EXPECT_EQ(parsed.specs[1].rank, 3);
  EXPECT_DOUBLE_EQ(parsed.specs[1].from_us, 9000.5);
  EXPECT_EQ(parsed.serialize(), plan.serialize());
}

TEST(FaultInjector, RankLostFollowsTheLatestEventAndRejoinWinsTies) {
  // The lost/alive verdict is the latest RankLoss/RankRejoin event whose
  // instant has passed; a rejoin at the same instant as a loss wins the tie,
  // independent of spec order in the plan (the rejoin is listed first here).
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::rejoin_rank(1, 100.0));
  plan.specs.push_back(FaultSpec::lose_rank(1, 100.0));
  plan.specs.push_back(FaultSpec::lose_rank(1, 50.0));
  plan.specs.push_back(FaultSpec::lose_rank(2, 50.0));
  inj.configure(plan);
  EXPECT_TRUE(inj.has_rank_loss());
  EXPECT_TRUE(inj.has_rank_rejoin());

  sched.spawn("probe", [&] {
    EXPECT_FALSE(inj.rank_lost(1)) << "no event has fired at t=0";
    sched.sleep_for(60.0);  // t=60: the t=50 losses have passed
    EXPECT_TRUE(inj.rank_lost(1));
    EXPECT_TRUE(inj.rank_lost(2));
    sched.sleep_for(60.0);  // t=120: loss and rejoin at t=100 tie -> alive
    EXPECT_FALSE(inj.rank_lost(1));
    EXPECT_TRUE(inj.rank_lost(2)) << "rank 2 never rejoined";
  });
  sched.run();
}

TEST(FaultPlan, SaveLoadRoundTrip) {
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::outage("nccl", 2500.0));
  const std::string path = ::testing::TempDir() + "/mcrdl_fault_plan_test.txt";
  plan.save(path);
  EXPECT_EQ(FaultPlan::load(path).serialize(), plan.serialize());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcrdl::fault
