// FailoverRouter routing rules, and end-to-end chaos runs through the full
// MCR-DL stack: retries, breaker trips and backend failover must leave the
// *data* identical to a fault-free run.
#include "src/fault/failover.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"
#include "src/obs/metrics.h"

namespace mcrdl::fault {
namespace {

const std::vector<std::string> kOrder = {"nccl", "sccl", "mv2-gdr"};

TEST(FailoverRouter, PrefersTheHealthyPreferredBackend) {
  FailoverRouter router(nullptr, RetryPolicy{}, 3, /*failover_enabled=*/true);
  EXPECT_EQ(router.select("nccl", kOrder, 0), "nccl");
}

TEST(FailoverRouter, SelectSkipsAnOpenBreaker) {
  FailoverRouter router(nullptr, RetryPolicy{}, 1, true);
  router.record_failure("nccl", 0);  // threshold 1: trips immediately
  EXPECT_FALSE(router.healthy("nccl", 0));
  EXPECT_EQ(router.select("nccl", kOrder, 0), "sccl");
}

TEST(FailoverRouter, HealthIsPerRankAndIgnoresLiveOutageState) {
  // Routing must not consult the injector's live (time-based) outage state:
  // a straggling rank would otherwise take a different route than the ranks
  // that issued the same logical op before the outage instant. Outages are
  // observed through the per-rendezvous verdict at issue instead, which is
  // identical for every participant.
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::outage("nccl", 0.0));
  inj.configure(plan);
  FailoverRouter router(&inj, RetryPolicy{}, 1, true);
  EXPECT_TRUE(router.healthy("nccl", 0));
  EXPECT_EQ(router.select("nccl", kOrder, 0), "nccl");
  router.record_failure("nccl", 0);  // the verdict observed at issue
  EXPECT_FALSE(router.healthy("nccl", 0));
  EXPECT_EQ(router.select("nccl", kOrder, 0), "sccl");
  EXPECT_TRUE(router.healthy("nccl", 1));  // rank 1 hasn't observed it yet
  EXPECT_EQ(router.select("nccl", kOrder, 1), "nccl");
}

TEST(FailoverRouter, NextHealthyScansPastTheFailedBackend) {
  FailoverRouter router(nullptr, RetryPolicy{}, 1, true);
  EXPECT_EQ(router.next_healthy("nccl", kOrder, 0), "sccl");
  router.record_failure("sccl", 0);
  EXPECT_EQ(router.next_healthy("nccl", kOrder, 0), "mv2-gdr");
}

TEST(FailoverRouter, ThrowsWhenNothingIsHealthy) {
  FailoverRouter router(nullptr, RetryPolicy{}, 1, true);
  for (const auto& b : kOrder) router.record_failure(b, 0);
  EXPECT_THROW(router.select("nccl", kOrder, 0), BackendUnavailable);
  EXPECT_THROW(router.next_healthy("nccl", kOrder, 0), BackendUnavailable);
}

TEST(FailoverRouter, DisabledFailoverRefusesToReroute) {
  FailoverRouter router(nullptr, RetryPolicy{}, 1, /*failover_enabled=*/false);
  router.record_failure("nccl", 0);
  EXPECT_THROW(router.select("nccl", kOrder, 0), BackendUnavailable);
  EXPECT_THROW(router.next_healthy("nccl", kOrder, 0), BackendUnavailable);
}

// --- report formatting ------------------------------------------------------
//
// The report string is parsed by tools/ci.sh (it greps the recovered-ops
// line), so the format is pinned exactly here: changing it is an interface
// change, not a cosmetic one.

TEST(ResilienceReportFormat, BaseReportOmitsRecoveryAndPerBackendBlocks) {
  ResilienceReport report;
  report.attempted = 12;
  report.succeeded = 10;
  report.retried = 3;
  report.rerouted = 2;
  report.failed = 1;
  report.breakers_tripped = 1;
  report.backoff_time_us = 450.5;
  EXPECT_EQ(report.to_string(),
            "resilience report:\n"
            "  operations succeeded : 10\n"
            "  issue attempts       : 12\n"
            "  retries (transient)  : 3\n"
            "  rerouted (failover)  : 2\n"
            "  failed permanently   : 1\n"
            "  breakers tripped     : 1\n"
            "  backoff virtual time : 450.5 us\n");
}

TEST(ResilienceReportFormat, RecoveryAndPerBackendBlocksPinTheirLayout) {
  ResilienceReport report;
  report.attempted = 9;
  report.succeeded = 9;
  report.ranks_lost = 2;
  report.epochs = 1;
  report.recovered = 6;
  report.stale_rejections = 3;
  report.by_backend["nccl"].failed = 1;
  report.by_backend["nccl"].rerouted = 4;
  report.by_backend["mv2-gdr"].rerouted = 0;
  EXPECT_EQ(report.to_string(),
            "resilience report:\n"
            "  operations succeeded : 9\n"
            "  issue attempts       : 9\n"
            "  retries (transient)  : 0\n"
            "  rerouted (failover)  : 0\n"
            "  failed permanently   : 0\n"
            "  breakers tripped     : 0\n"
            "  backoff virtual time : 0 us\n"
            "  ranks lost           : 2\n"
            "  recovery epochs      : 1\n"
            "  recovered ops        : 6\n"
            "  stale-epoch rejects  : 3\n"
            "  per-backend:\n"
            "    mv2-gdr : failed 0, rerouted away 0\n"
            "    nccl    : failed 1, rerouted away 4\n");
}

TEST(ResilienceReportFormat, GrowBackBlockPinsItsLayout) {
  // The grow block (and the per-backend `grow drained` suffix) appears only
  // when grow-back actually happened, so shrink-only reports — and the
  // ci.sh greps over them — keep their exact bytes. The rejoin smoke greps
  // the `ranks rejoined` line, so this layout is pinned too.
  ResilienceReport report;
  report.attempted = 4;
  report.succeeded = 4;
  report.ranks_lost = 1;
  report.epochs = 2;
  report.recovered = 3;
  report.ranks_rejoined = 1;
  report.grow_events = 1;
  report.checkpoint_restores = 2;
  report.by_backend["mv2-gdr"].grow_drained = 5;
  report.by_backend["nccl"].rerouted = 1;
  EXPECT_EQ(report.to_string(),
            "resilience report:\n"
            "  operations succeeded : 4\n"
            "  issue attempts       : 4\n"
            "  retries (transient)  : 0\n"
            "  rerouted (failover)  : 0\n"
            "  failed permanently   : 0\n"
            "  breakers tripped     : 0\n"
            "  backoff virtual time : 0 us\n"
            "  ranks lost           : 1\n"
            "  recovery epochs      : 2\n"
            "  recovered ops        : 3\n"
            "  stale-epoch rejects  : 0\n"
            "  ranks rejoined       : 1\n"
            "  grow events          : 1\n"
            "  checkpoint restores  : 2\n"
            "  per-backend:\n"
            "    mv2-gdr : failed 0, rerouted away 0, grow drained 5\n"
            "    nccl    : failed 0, rerouted away 1\n");
}

TEST(ResilienceReportFormat, PerBackendCountersFillFromEndToEndFailover) {
  // The by_backend breakdown is populated by the route stage: the backend
  // traffic was rerouted *away from* gets the credit.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::outage("nccl", 0.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({16}, DType::F32, 1.0, cluster.device(rank));
    api.all_reduce("nccl", t, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
  const ResilienceReport& report = mcr.failover()->report();
  ASSERT_EQ(report.by_backend.count("nccl"), 1u);
  EXPECT_GT(report.by_backend.at("nccl").rerouted, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_NE(report.to_string().find("per-backend:"), std::string::npos);
  EXPECT_NE(report.to_string().find("rerouted away"), std::string::npos);
}

// --- end-to-end chaos runs --------------------------------------------------

// Runs `iters` allreduces on the requested backend and returns each rank's
// final tensor value (every op scales the data deterministically).
std::vector<double> run_workload(McrDl& mcr, ClusterContext& cluster, int iters) {
  std::vector<double> finals(cluster.world_size(), 0.0);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({64}, DType::F32, static_cast<double>(rank + 1),
                            cluster.device(rank));
    for (int i = 0; i < iters; ++i) {
      api.all_reduce("nccl", t, ReduceOp::Sum);
      cluster.scheduler().sleep_for(100.0);  // spread iterations over time
    }
    api.synchronize();  // nccl is stream-synchronised; drain before reading
    finals[rank] = t.get(0);
  });
  return finals;
}

TEST(FailoverEndToEnd, MidRunOutageFailsOverWithIdenticalResults) {
  // Baseline: no faults.
  ClusterContext base_cluster(net::SystemConfig::lassen(1));
  McrDl base(&base_cluster);
  base.init({"nccl", "mv2-gdr"});
  const std::vector<double> expected = run_workload(base, base_cluster, 6);

  // Chaos: nccl goes down for good mid-run; ops must move to mv2-gdr.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::outage("nccl", 250.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  const std::vector<double> got = run_workload(mcr, cluster, 6);

  EXPECT_EQ(got, expected);  // zero wrong results
  ASSERT_NE(mcr.failover(), nullptr);
  const ResilienceReport& report = mcr.failover()->report();
  EXPECT_GT(report.rerouted, 0u);
  EXPECT_EQ(report.failed, 0u);
  // The outage is observed at issue (failed attempts), then pre-routed once
  // each rank's breaker trips — so attempts exceed completions.
  EXPECT_GT(report.attempted, report.succeeded);

  // The reroute is visible in the log: records that asked for nccl but ran
  // on mv2-gdr, flagged as rerouted.
  bool saw_reroute = false;
  for (const auto& r : mcr.logger().records()) {
    if (r.rerouted) {
      saw_reroute = true;
      EXPECT_EQ(r.backend, "mv2-gdr");
      EXPECT_EQ(r.requested_backend, "nccl");
      EXPECT_EQ(r.fault, "unavailable");
    }
  }
  EXPECT_TRUE(saw_reroute);
}

TEST(FailoverEndToEnd, TransientFaultIsRetriedAndSucceeds) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.fault.enabled = true;
  // Every attempt in the first 40us fails; the 200us backoff pushes the
  // retry safely past the window, so attempt 2 succeeds.
  opts.fault.plan.specs.push_back(FaultSpec::transient("mv2-gdr", 1.0, 0.0, 40.0));
  opts.fault.retry.base_backoff_us = 200.0;
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({16}, DType::F32, 1.0, cluster.device(rank));
    api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(t.get(0), 4.0);
  });
  const ResilienceReport& report = mcr.failover()->report();
  EXPECT_GT(report.retried, 0u);
  EXPECT_EQ(report.rerouted, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.backoff_time_us, 0.0);
  EXPECT_GT(cluster.faults().stats().transient_injected, 0u);
  // Retries show up in the trace metadata.
  bool saw_retry = false;
  for (const auto& r : mcr.logger().records()) {
    if (r.attempts > 1) {
      saw_retry = true;
      EXPECT_EQ(r.fault, "transient");
      EXPECT_FALSE(r.rerouted);
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(FailoverEndToEnd, RetryExhaustionWithoutAlternativesRaises) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::transient("nccl", 1.0));  // always fails
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});  // nowhere to fail over to
  EXPECT_THROW(cluster.run_spmd([&](int rank) {
                 Api api = mcr.on(rank);
                 Tensor t = Tensor::full({16}, DType::F32, 1.0, cluster.device(rank));
                 api.all_reduce("nccl", t, ReduceOp::Sum);
               }),
               TransientFault);
  EXPECT_GT(mcr.failover()->report().failed, 0u);
}

TEST(FailoverEndToEnd, PersistentTransientsTripTheBreakerAndReroute) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::transient("nccl", 1.0));
  opts.fault.breaker_threshold = 3;  // == default max_attempts
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({16}, DType::F32, 1.0, cluster.device(rank));
    for (int i = 0; i < 3; ++i) api.all_reduce("nccl", t, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(t.get(0), 64.0);  // 1 * 4^3: every allreduce completed
  });
  const ResilienceReport& report = mcr.failover()->report();
  EXPECT_GT(report.breakers_tripped, 0u);
  EXPECT_GT(report.rerouted, 0u);
  EXPECT_EQ(report.failed, 0u);
  for (int rank = 0; rank < cluster.world_size(); ++rank) {
    EXPECT_FALSE(mcr.failover()->healthy("nccl", rank));
    EXPECT_TRUE(mcr.failover()->healthy("mv2-gdr", rank));
  }
}

TEST(FailoverEndToEnd, BreakerClosesAfterOutageEndsAndTrafficReturns) {
  // A *windowed* fault: nccl fails every attempt until t=250us, then is
  // fine. The breaker must trip during the window, age open→half-open on the
  // denied ops that follow, probe nccl once the window has passed, close,
  // and route the tail of the run back to the preferred backend — with the
  // data still identical to a fault-free run.
  ClusterContext base_cluster(net::SystemConfig::lassen(1));
  McrDl base(&base_cluster);
  base.init({"nccl", "mv2-gdr"});
  const std::vector<double> expected = run_workload(base, base_cluster, 10);

  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::transient("nccl", 1.0, 0.0, 250.0));
  opts.fault.breaker_threshold = 3;  // trips inside the first op's retry ladder
  opts.fault.breaker_probe_after_ops = 2;
  opts.fault.breaker_cooldown = 1;
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  const std::vector<double> got = run_workload(mcr, cluster, 10);

  EXPECT_EQ(got, expected);  // zero wrong results through trip + recovery
  const ResilienceReport& report = mcr.failover()->report();
  EXPECT_GT(report.breakers_tripped, 0u);
  EXPECT_GT(report.rerouted, 0u);
  EXPECT_EQ(report.failed, 0u);

  // Every rank's breaker ended the run closed: the probe succeeded.
  for (int rank = 0; rank < cluster.world_size(); ++rank) {
    EXPECT_TRUE(mcr.failover()->healthy("nccl", rank)) << "rank " << rank;
  }

  // Traffic returned: each rank's final logged op ran on nccl, un-rerouted.
  const std::vector<CommRecord> records = mcr.logger().records();
  std::map<int, const CommRecord*> last;
  for (const auto& r : records) last[r.rank] = &r;
  ASSERT_EQ(last.size(), static_cast<std::size_t>(cluster.world_size()));
  for (const auto& [rank, r] : last) {
    EXPECT_EQ(r->backend, "nccl") << "rank " << rank;
    EXPECT_FALSE(r->rerouted) << "rank " << rank;
  }

  // The full open → half-open → closed cycle surfaced as metrics events,
  // once per rank.
  const auto world = static_cast<std::uint64_t>(cluster.world_size());
  obs::MetricsRegistry& metrics = cluster.metrics();
  EXPECT_EQ(metrics.counter_value("breaker_transitions",
                                  {{"backend", "nccl"}, {"to", "open"}}),
            world);
  EXPECT_EQ(metrics.counter_value("breaker_transitions",
                                  {{"backend", "nccl"}, {"to", "half_open"}}),
            world);
  EXPECT_EQ(metrics.counter_value("breaker_transitions",
                                  {{"backend", "nccl"}, {"to", "closed"}}),
            world);
}

TEST(FailoverEndToEnd, PointToPointRetriesStayPaired) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::transient("nccl", 1.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  cluster.run_spmd(2, [&](int rank) {
    Api api = mcr.on(rank);
    if (rank == 0) {
      Tensor t = Tensor::full({8}, DType::F32, 7.0, cluster.device(rank));
      api.send("nccl", t, 1);
    } else {
      Tensor t = Tensor::zeros({8}, DType::F32, cluster.device(rank));
      api.recv("nccl", t, 0);
      EXPECT_DOUBLE_EQ(t.get(0), 7.0);  // delivered despite the doomed backend
    }
  });
  EXPECT_GT(mcr.failover()->report().rerouted, 0u);
}

TEST(FailoverEndToEnd, StragglerPlusTransientsKeepRetryLaddersAligned) {
  // Regression: a straggling rank joins each op's rendezvous long after the
  // other ranks have moved on — possibly to failures of a *later* op. With
  // breaker health shared across ranks, those later failures could trip the
  // breaker while the straggler was still mid-way through an earlier op's
  // retry ladder, sending it to a different backend than the ranks already
  // parked in the nccl retry rendezvous: a virtual-time deadlock. Health is
  // per-rank precisely so this combination stays aligned.
  ClusterContext base_cluster(net::SystemConfig::lassen(1));
  McrDl base(&base_cluster);
  base.init({"nccl", "mv2-gdr"});
  const std::vector<double> expected = run_workload(base, base_cluster, 6);

  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.seed = 99;
  opts.fault.plan.specs.push_back(FaultSpec::transient("nccl", 0.4));
  opts.fault.plan.specs.push_back(FaultSpec::straggler(3, 400.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});
  const std::vector<double> got = run_workload(mcr, cluster, 6);

  EXPECT_EQ(got, expected);
  EXPECT_EQ(mcr.failover()->report().failed, 0u);
}

TEST(FailoverEndToEnd, EmptyPlanLeavesVirtualTimeUntouched) {
  // Enabling the subsystem with no faults must not change the timeline: the
  // injector short-circuits and the router issues exactly once.
  auto timed_run = [](bool with_fault_layer) {
    ClusterContext cluster(net::SystemConfig::lassen(1));
    McrDlOptions opts;
    opts.fault.enabled = with_fault_layer;
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl", "mv2-gdr"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor t = Tensor::full({4096}, DType::F32, 1.0, cluster.device(rank));
      api.all_reduce("nccl", t, ReduceOp::Sum);
      Tensor o = Tensor::zeros({4096}, DType::F32, cluster.device(rank));
      api.all_to_all_single("mv2-gdr", o, t);
      api.synchronize();
    });
    return cluster.scheduler().now();
  };
  EXPECT_DOUBLE_EQ(timed_run(false), timed_run(true));
}

TEST(FailoverEndToEnd, LinkDegradationSlowsVirtualTimeWithoutErrors) {
  auto timed_run = [](double beta_factor) {
    ClusterContext cluster(net::SystemConfig::lassen(2));
    McrDlOptions opts;
    opts.fault.enabled = true;
    if (beta_factor != 1.0) {
      opts.fault.plan.specs.push_back(
          FaultSpec::degrade_links("nccl", beta_factor, LinkScope::InterNode));
    }
    McrDl mcr(&cluster, opts);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor t = Tensor::full({1 << 20}, DType::F32, 1.0, cluster.device(rank));
      api.all_reduce("nccl", t, ReduceOp::Sum);
      api.synchronize();  // drain the nccl stream before reading
      EXPECT_DOUBLE_EQ(t.get(0), 8.0);
    });
    return cluster.scheduler().now();
  };
  EXPECT_GT(timed_run(4.0), timed_run(1.0));
}

TEST(FailoverEndToEnd, StragglerDelaysOnlyItsRankAndTheCollectiveWaits) {
  auto timed_run = [](SimTime delay) {
    ClusterContext cluster(net::SystemConfig::lassen(1));
    McrDlOptions opts;
    opts.fault.enabled = true;
    if (delay > 0.0) opts.fault.plan.specs.push_back(FaultSpec::straggler(2, delay));
    McrDl mcr(&cluster, opts);
    mcr.init({"mv2-gdr"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor t = Tensor::full({64}, DType::F32, 1.0, cluster.device(rank));
      api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
      EXPECT_DOUBLE_EQ(t.get(0), 4.0);
    });
    return cluster.scheduler().now();
  };
  const SimTime clean = timed_run(0.0);
  const SimTime delayed = timed_run(500.0);
  // The whole collective finishes later because it rendezvouses with the
  // injected straggler.
  EXPECT_GE(delayed, clean + 500.0);
}

}  // namespace
}  // namespace mcrdl::fault
