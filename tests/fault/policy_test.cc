// RetryPolicy backoff schedule and CircuitBreaker state machine.
#include "src/fault/policy.h"

#include <gtest/gtest.h>

namespace mcrdl::fault {
namespace {

TEST(RetryPolicy, ExponentialBackoffSchedule) {
  RetryPolicy p;  // 50us base, x2
  EXPECT_DOUBLE_EQ(p.backoff(1), 50.0);
  EXPECT_DOUBLE_EQ(p.backoff(2), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff(3), 200.0);
  RetryPolicy slow{5, 10.0, 3.0};
  EXPECT_DOUBLE_EQ(slow.backoff(1), 10.0);
  EXPECT_DOUBLE_EQ(slow.backoff(4), 270.0);
}

TEST(CircuitBreaker, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker cb(3);
  EXPECT_TRUE(cb.healthy("nccl", 0));
  EXPECT_FALSE(cb.record_failure("nccl", 0));
  EXPECT_FALSE(cb.record_failure("nccl", 0));
  EXPECT_TRUE(cb.healthy("nccl", 0));  // 2 < 3: still closed
  EXPECT_TRUE(cb.record_failure("nccl", 0));  // third failure trips it
  EXPECT_FALSE(cb.healthy("nccl", 0));
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker cb(3);
  cb.record_failure("nccl", 0);
  cb.record_failure("nccl", 0);
  cb.record_success("nccl", 0);
  EXPECT_EQ(cb.consecutive_failures("nccl", 0), 0);
  cb.record_failure("nccl", 0);
  cb.record_failure("nccl", 0);
  EXPECT_TRUE(cb.healthy("nccl", 0));  // the streak restarted after the success
}

TEST(CircuitBreaker, HealthIsPerRank) {
  // A rank's health must depend only on the verdicts that rank observed:
  // shared health would let a fast rank's trip (recorded on a later op)
  // reroute a straggler mid-way through an earlier op's retry ladder,
  // desyncing communicator sequence numbers.
  CircuitBreaker cb(2);
  cb.record_failure("nccl", 0);
  cb.record_failure("nccl", 1);
  EXPECT_EQ(cb.consecutive_failures("nccl", 0), 1);
  EXPECT_EQ(cb.consecutive_failures("nccl", 1), 1);
  EXPECT_TRUE(cb.healthy("nccl", 0));  // neither rank reached the threshold
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  EXPECT_FALSE(cb.healthy("nccl", 0));  // rank 0 tripped...
  EXPECT_TRUE(cb.healthy("nccl", 1));   // ...rank 1 keeps its own ladder
  EXPECT_TRUE(cb.record_failure("nccl", 1));  // until it trips at the same op
  EXPECT_FALSE(cb.healthy("nccl", 1));
}

TEST(CircuitBreaker, BackendsAreIndependent) {
  CircuitBreaker cb(1);
  cb.record_failure("nccl", 0);
  EXPECT_FALSE(cb.healthy("nccl", 0));
  EXPECT_TRUE(cb.healthy("mv2-gdr", 0));
}

TEST(CircuitBreaker, StaysOpenOnceTripped) {
  // Reopening mid-run would desync communicator sequence numbers across
  // ranks, so a tripped breaker is permanent for the life of the run.
  CircuitBreaker cb(1);
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  cb.record_success("nccl", 0);
  EXPECT_FALSE(cb.healthy("nccl", 0));
  EXPECT_FALSE(cb.record_failure("nccl", 0));  // not a *new* trip
}

}  // namespace
}  // namespace mcrdl::fault
