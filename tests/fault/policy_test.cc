// RetryPolicy backoff schedule and CircuitBreaker state machine.
#include "src/fault/policy.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mcrdl::fault {
namespace {

TEST(RetryPolicy, ExponentialBackoffSchedule) {
  RetryPolicy p;  // 50us base, x2
  EXPECT_DOUBLE_EQ(p.backoff(1), 50.0);
  EXPECT_DOUBLE_EQ(p.backoff(2), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff(3), 200.0);
  RetryPolicy slow{5, 10.0, 3.0};
  EXPECT_DOUBLE_EQ(slow.backoff(1), 10.0);
  EXPECT_DOUBLE_EQ(slow.backoff(4), 270.0);
}

TEST(RetryPolicy, ZeroSeedDisablesJitterExactly) {
  // jitter_seed = 0 is the default; the rank-aware overload must then be
  // the exact exponential schedule every pinned trace was recorded with.
  RetryPolicy p;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    for (int rank = 0; rank < 8; ++rank) {
      EXPECT_DOUBLE_EQ(p.backoff(attempt, rank), p.backoff(attempt));
    }
  }
}

TEST(RetryPolicy, JitterDrawsStayInTheExponentialWindow) {
  RetryPolicy p;
  p.jitter_seed = 7;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    for (int rank = 0; rank < 16; ++rank) {
      const SimTime b = p.backoff(attempt, rank);
      EXPECT_GT(b, 0.0) << "full jitter must never sleep zero";
      EXPECT_LE(b, p.backoff(attempt)) << "jitter cannot exceed the window";
    }
  }
}

TEST(RetryPolicy, JitterDecorrelatesRanksButReproducesPerSeed) {
  // After a shared outage, two ranks' retry schedules must diverge (no
  // thundering herd) while a fixed seed reproduces each schedule exactly.
  RetryPolicy p;
  p.jitter_seed = 42;
  std::vector<SimTime> rank0, rank1;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    rank0.push_back(p.backoff(attempt, 0));
    rank1.push_back(p.backoff(attempt, 1));
  }
  EXPECT_NE(rank0, rank1) << "two ranks drew identical jitter schedules";

  RetryPolicy replay;
  replay.jitter_seed = 42;
  std::vector<SimTime> rank0_again;
  for (int attempt = 1; attempt <= 6; ++attempt) rank0_again.push_back(replay.backoff(attempt, 0));
  EXPECT_EQ(rank0, rank0_again) << "the same seed must reproduce the exact trace";

  RetryPolicy reseeded;
  reseeded.jitter_seed = 43;
  std::vector<SimTime> rank0_other;
  for (int attempt = 1; attempt <= 6; ++attempt) rank0_other.push_back(reseeded.backoff(attempt, 0));
  EXPECT_NE(rank0, rank0_other) << "different seeds must draw different schedules";
}

TEST(RetryPolicy, JitterIsAPureFunctionOfSeedRankAndAttempt) {
  // No hidden stream state: interleaving queries in any order cannot change
  // a draw, so retries replayed after recovery sleep the same backoff.
  RetryPolicy p;
  p.jitter_seed = 9;
  const SimTime first = p.backoff(3, 5);
  p.backoff(1, 0);
  p.backoff(4, 2);
  EXPECT_DOUBLE_EQ(p.backoff(3, 5), first);
}

TEST(CircuitBreaker, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker cb(3);
  EXPECT_TRUE(cb.healthy("nccl", 0));
  EXPECT_FALSE(cb.record_failure("nccl", 0));
  EXPECT_FALSE(cb.record_failure("nccl", 0));
  EXPECT_TRUE(cb.healthy("nccl", 0));  // 2 < 3: still closed
  EXPECT_TRUE(cb.record_failure("nccl", 0));  // third failure trips it
  EXPECT_FALSE(cb.healthy("nccl", 0));
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker cb(3);
  cb.record_failure("nccl", 0);
  cb.record_failure("nccl", 0);
  cb.record_success("nccl", 0);
  EXPECT_EQ(cb.consecutive_failures("nccl", 0), 0);
  cb.record_failure("nccl", 0);
  cb.record_failure("nccl", 0);
  EXPECT_TRUE(cb.healthy("nccl", 0));  // the streak restarted after the success
}

TEST(CircuitBreaker, HealthIsPerRank) {
  // A rank's health must depend only on the verdicts that rank observed:
  // shared health would let a fast rank's trip (recorded on a later op)
  // reroute a straggler mid-way through an earlier op's retry ladder,
  // desyncing communicator sequence numbers.
  CircuitBreaker cb(2);
  cb.record_failure("nccl", 0);
  cb.record_failure("nccl", 1);
  EXPECT_EQ(cb.consecutive_failures("nccl", 0), 1);
  EXPECT_EQ(cb.consecutive_failures("nccl", 1), 1);
  EXPECT_TRUE(cb.healthy("nccl", 0));  // neither rank reached the threshold
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  EXPECT_FALSE(cb.healthy("nccl", 0));  // rank 0 tripped...
  EXPECT_TRUE(cb.healthy("nccl", 1));   // ...rank 1 keeps its own ladder
  EXPECT_TRUE(cb.record_failure("nccl", 1));  // until it trips at the same op
  EXPECT_FALSE(cb.healthy("nccl", 1));
}

TEST(CircuitBreaker, BackendsAreIndependent) {
  CircuitBreaker cb(1);
  cb.record_failure("nccl", 0);
  EXPECT_FALSE(cb.healthy("nccl", 0));
  EXPECT_TRUE(cb.healthy("mv2-gdr", 0));
}

TEST(CircuitBreaker, SuccessWhileOpenDoesNotClose) {
  // An open breaker routes nothing, so successes recorded against it (e.g.
  // from a stale in-flight op) must not silently close it; recovery goes
  // through the half-open probe path.
  CircuitBreaker cb(1);
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  cb.record_success("nccl", 0);
  EXPECT_FALSE(cb.healthy("nccl", 0));
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Open);
  EXPECT_FALSE(cb.record_failure("nccl", 0));  // not a *new* trip
}

TEST(CircuitBreaker, OpenToHalfOpenAfterEnoughSkippedOps) {
  // probe_after_ops denied routes age the breaker into HalfOpen, which
  // admits traffic again (healthy) — the next op becomes the probe.
  CircuitBreaker cb(BreakerConfig{1, 2, 3});
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Open);
  cb.note_skipped("nccl", 0);
  cb.note_skipped("nccl", 0);
  EXPECT_FALSE(cb.healthy("nccl", 0));  // 2 < 3: still open
  cb.note_skipped("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
  EXPECT_TRUE(cb.healthy("nccl", 0));
}

TEST(CircuitBreaker, HalfOpenClosesAfterCooldownSuccesses) {
  CircuitBreaker cb(BreakerConfig{1, 2, 1});
  cb.record_failure("nccl", 0);
  cb.note_skipped("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
  cb.record_success("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);  // 1 < 2 successes
  cb.record_success("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Closed);
  // Fully reset: the next trip needs a fresh failure streak.
  EXPECT_EQ(cb.consecutive_failures("nccl", 0), 0);
  EXPECT_TRUE(cb.record_failure("nccl", 0));
}

TEST(CircuitBreaker, FailedProbeReopensImmediately) {
  CircuitBreaker cb(BreakerConfig{2, 2, 1});
  cb.record_failure("nccl", 0);
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  cb.note_skipped("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
  cb.record_success("nccl", 0);  // one good probe...
  // ...but a single failure in HalfOpen re-opens without a fresh streak,
  // and it counts as a new trip (return true).
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Open);
  // The re-opened breaker needs a full round of skips before the next probe.
  cb.note_skipped("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
}

TEST(CircuitBreaker, AllowProbeForcesHalfOpen) {
  CircuitBreaker cb(BreakerConfig{1, 1, 0});  // probing by op count disabled
  cb.record_failure("nccl", 0);
  cb.note_skipped("nccl", 0);
  cb.note_skipped("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Open);  // skips ignored
  EXPECT_TRUE(cb.allow_probe("nccl", 0));   // explicit admission
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
  EXPECT_FALSE(cb.allow_probe("nccl", 0));  // only meaningful while open
  cb.record_success("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Closed);
}

TEST(CircuitBreaker, SkipsOnlyAgeOpenBreakers) {
  CircuitBreaker cb(BreakerConfig{2, 1, 1});
  cb.note_skipped("nccl", 0);  // closed: no-op
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::Closed);
  cb.record_failure("nccl", 0);
  cb.note_skipped("nccl", 0);  // still closed (1 < 2 failures): no-op
  EXPECT_TRUE(cb.record_failure("nccl", 0));
  cb.note_skipped("nccl", 0);
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
  cb.note_skipped("nccl", 0);  // half-open: no-op, probes are in flight
  EXPECT_EQ(cb.state("nccl", 0), BreakerState::HalfOpen);
}

TEST(CircuitBreaker, TransitionHookSeesEveryStateChange) {
  CircuitBreaker cb(BreakerConfig{1, 1, 1});
  std::vector<std::string> events;
  cb.set_transition_hook([&](const std::string& backend, int rank, BreakerState to) {
    events.push_back(backend + "/" + std::to_string(rank) + ":" + breaker_state_name(to));
  });
  cb.record_failure("nccl", 3);
  cb.note_skipped("nccl", 3);
  cb.record_success("nccl", 3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "nccl/3:open");
  EXPECT_EQ(events[1], "nccl/3:half_open");
  EXPECT_EQ(events[2], "nccl/3:closed");
}

}  // namespace
}  // namespace mcrdl::fault
