// Elastic grow-back end-to-end: quiesce -> grow -> resume when lost ranks
// rejoin (DESIGN.md §13). Every scenario runs under BOTH execution engines
// (SerialBaton and ParallelShards) — grow events are processed at virtual-
// time instants, so the engines must agree on every outcome.
//
// The workload below is the two-phase shape tools/mcrdl_chaos.cc uses for
// its rejoin differential: phase one absorbs the loss, every rank then
// parks until just past the rejoin instant (a virtual-time barrier, so the
// grow fires into an idle cluster), and phase two runs on whatever world is
// alive. A full-world allreduce-sum equalizes every participant, so "all
// finished and agree" is the correctness check.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"
#include "src/fault/recovery.h"

namespace mcrdl::fault {
namespace {

class RejoinTest : public ::testing::TestWithParam<sim::ExecutionConfig> {
 protected:
  sim::ExecutionConfig config() const { return GetParam(); }
};

std::string config_name(const ::testing::TestParamInfo<sim::ExecutionConfig>& info) {
  return info.param.kind == sim::ExecutionModelKind::SerialBaton
             ? "serial"
             : "parallel" + std::to_string(info.param.threads);
}

struct RejoinRun {
  std::vector<double> finals;    // final tensor value per rank (0 = did not finish)
  std::vector<int> died_phase_one;  // rank broke out of phase one (int: bit-vector
                                    // writes from same-instant actors would race)
};

// The deterministic loss recipe from recovery_test.cc with one twist: the
// dying rank goes silent shortly before it is declared lost (so survivors
// are parked in a pending rendezvous when the loss event fires), but the
// straggler window is *bounded at the loss instant* — the rank must come
// back healthy if a later rejoin re-admits it.
void add_loss(FaultPlan& plan, int rank, SimTime at) {
  plan.specs.push_back(
      FaultSpec::straggler(rank, 10 * at, /*from_us=*/at * 0.8, /*until_us=*/at));
  plan.specs.push_back(FaultSpec::lose_rank(rank, at));
}

// `iters` allreduce-sum iterations per phase on mv2-gdr, 400us apart. A rank
// that dies in phase one *breaks* (it may come back); the barrier sleeps
// everyone past `rejoin_us`; phase two runs on the then-alive world.
RejoinRun run_two_phase(McrDl& mcr, ClusterContext& cluster, int iters, SimTime rejoin_us,
                        std::size_t elems = 64) {
  RejoinRun out;
  const auto world = static_cast<std::size_t>(cluster.world_size());
  out.finals.assign(world, 0.0);
  out.died_phase_one.assign(world, 0);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({static_cast<int>(elems)}, DType::F32,
                            static_cast<double>(rank + 1), cluster.device(rank));
    for (int i = 0; i < iters; ++i) {
      if (cluster.faults().rank_lost(rank)) {
        out.died_phase_one[static_cast<std::size_t>(rank)] = 1;
        break;
      }
      try {
        api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        out.died_phase_one[static_cast<std::size_t>(rank)] = 1;
        break;
      }
      cluster.scheduler().sleep_for(400.0);
    }
    const SimTime wake = rejoin_us + 401.0;
    if (cluster.scheduler().now() < wake) {
      cluster.scheduler().sleep_for(wake - cluster.scheduler().now());
    }
    for (int i = 0; i < iters; ++i) {
      if (cluster.faults().rank_lost(rank)) return;
      try {
        api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        return;
      }
      cluster.scheduler().sleep_for(400.0);
    }
    api.synchronize();
    out.finals[static_cast<std::size_t>(rank)] = t.get(0);
  });
  return out;
}

// Ranks in `alive` all finished phase two and hold the same positive value;
// everyone else never finished.
void check_alive_agree(const RejoinRun& run, const std::vector<int>& alive) {
  ASSERT_FALSE(alive.empty());
  const double got = run.finals[static_cast<std::size_t>(alive.front())];
  EXPECT_GT(got, 0.0);
  for (std::size_t r = 0; r < run.finals.size(); ++r) {
    const bool expected_alive =
        std::find(alive.begin(), alive.end(), static_cast<int>(r)) != alive.end();
    if (expected_alive) {
      EXPECT_DOUBLE_EQ(run.finals[r], got) << "alive ranks diverged at rank " << r;
    } else {
      EXPECT_DOUBLE_EQ(run.finals[r], 0.0) << "dead rank " << r << " finished";
    }
  }
}

// --- unit level -------------------------------------------------------------

TEST_P(RejoinTest, RejoinOfNeverLostRankIsRejected) {
  sim::Scheduler sched(config());
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::lose_rank(3, 1e9));  // far future: arms, never fires
  inj.configure(plan);
  RecoveryManager& rec = inj.recovery();
  rec.arm(4);
  ASSERT_TRUE(rec.armed());

  rec.on_rank_rejoin({2});
  EXPECT_EQ(rec.epoch(), 0u) << "a rejected rejoin must not open an epoch";
  EXPECT_EQ(rec.stats().rejoins_rejected, 1u);
  EXPECT_EQ(rec.stats().ranks_rejoined, 0u);
  EXPECT_EQ(rec.stats().grow_events, 0u);
  EXPECT_EQ(rec.survivors(), (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(RejoinTest, DoubleRejoinSecondIsRejected) {
  sim::Scheduler sched(config());
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::lose_rank(3, 1e9));
  inj.configure(plan);
  RecoveryManager& rec = inj.recovery();
  rec.arm(4);

  rec.on_rank_loss({1});
  EXPECT_EQ(rec.epoch(), 1u);
  rec.on_rank_rejoin({1});
  EXPECT_EQ(rec.epoch(), 2u);
  EXPECT_EQ(rec.stats().ranks_rejoined, 1u);
  EXPECT_EQ(rec.stats().grow_events, 1u);
  EXPECT_FALSE(rec.lost(1));
  EXPECT_EQ(rec.survivors(), (std::vector<int>{0, 1, 2, 3}));

  rec.on_rank_rejoin({1});  // already back: rejected, nothing changes
  EXPECT_EQ(rec.epoch(), 2u);
  EXPECT_EQ(rec.stats().ranks_rejoined, 1u);
  EXPECT_EQ(rec.stats().grow_events, 1u);
  EXPECT_EQ(rec.stats().rejoins_rejected, 1u);
}

TEST_P(RejoinTest, MixedRejoinAdmitsOnlyTheLost) {
  // One event naming a lost rank and a healthy one: the lost rank is
  // admitted (one grow epoch), the healthy one rejected.
  sim::Scheduler sched(config());
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::lose_rank(3, 1e9));
  inj.configure(plan);
  RecoveryManager& rec = inj.recovery();
  rec.arm(4);
  rec.on_rank_loss({1, 2});

  rec.on_rank_rejoin({0, 1});
  EXPECT_EQ(rec.stats().ranks_rejoined, 1u);
  EXPECT_EQ(rec.stats().rejoins_rejected, 1u);
  EXPECT_EQ(rec.stats().grow_events, 1u);
  EXPECT_EQ(rec.survivors(), (std::vector<int>{0, 1, 3}));
}

// --- end-to-end scenarios ---------------------------------------------------

TEST_P(RejoinTest, LossThenRejoinRestoresTheFullWorld) {
  ClusterContext cluster(net::SystemConfig::lassen(1), config());  // 4 ranks
  McrDlOptions opts;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  opts.fault.plan.specs.push_back(FaultSpec::rejoin_rank(1, 30000.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});
  ASSERT_TRUE(mcr.recovery().armed());

  const RejoinRun run = run_two_phase(mcr, cluster, /*iters=*/6, /*rejoin_us=*/30000.0);
  EXPECT_TRUE(run.died_phase_one[1]);
  check_alive_agree(run, {0, 1, 2, 3});

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 1u);
  EXPECT_EQ(stats.ranks_rejoined, 1u);
  EXPECT_EQ(stats.grow_events, 1u);
  EXPECT_EQ(stats.epochs, 2u) << "one shrink cycle + one grow cycle";
  EXPECT_FALSE(mcr.recovery().lost(1));
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 2, 3}));

  // Counters mirror into the resilience report and the metrics registry.
  ASSERT_NE(mcr.failover(), nullptr);
  const ResilienceReport& report = mcr.failover()->report();
  EXPECT_EQ(report.ranks_rejoined, 1u);
  EXPECT_EQ(report.grow_events, 1u);
  EXPECT_EQ(cluster.metrics().counter_value("recovery_grow_events"), 1u);
  EXPECT_EQ(cluster.metrics().counter_value("recovery_grow_ranks_rejoined"), 1u);
}

TEST_P(RejoinTest, WarmSpareStartsExcludedAndGrowsIn) {
  // Rank 3 is a warm spare: excluded from the initial world (rank_loss at
  // t=0, applied synchronously at arm) and admitted by a rejoin spec. The
  // run starts on 3 ranks and finishes on 4.
  ClusterContext cluster(net::SystemConfig::lassen(1), config());
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.spare_ranks = {3};
  opts.fault.plan.specs.push_back(FaultSpec::rejoin_rank(3, 8000.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});
  ASSERT_TRUE(mcr.recovery().armed());
  EXPECT_TRUE(mcr.recovery().lost(3)) << "the spare must start excluded";
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 2}));

  const RejoinRun run = run_two_phase(mcr, cluster, /*iters=*/6, /*rejoin_us=*/8000.0);
  EXPECT_TRUE(run.died_phase_one[3]);  // never entered phase one
  check_alive_agree(run, {0, 1, 2, 3});
  EXPECT_EQ(mcr.recovery().stats().ranks_rejoined, 1u);
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(RejoinTest, LossAndRejoinAtTheSameInstantProcessLossFirst) {
  // At t=30000 rank 2 dies and rank 1 (lost at 2500) comes back, in one
  // combined event: the loss's quiesce runs first, then the grow admits the
  // rejoiner into the already-shrunk world. Net world: {0, 1, 3}.
  ClusterContext cluster(net::SystemConfig::lassen(1), config());
  McrDlOptions opts;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  opts.fault.plan.specs.push_back(FaultSpec::lose_rank(2, 30000.0));
  opts.fault.plan.specs.push_back(FaultSpec::rejoin_rank(1, 30000.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  const RejoinRun run = run_two_phase(mcr, cluster, /*iters=*/6, /*rejoin_us=*/30000.0);
  EXPECT_TRUE(run.died_phase_one[1]);
  check_alive_agree(run, {0, 1, 3});

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 2u);
  EXPECT_EQ(stats.ranks_rejoined, 1u);
  EXPECT_EQ(stats.grow_events, 1u);
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 3}));
}

TEST_P(RejoinTest, LossAfterGrowComposesEpochs) {
  // Rank 1 dies, rejoins, and then rank 2 dies mid-phase-two: the shrink
  // after the grow must open a fresh epoch and the freshly rejoined rank
  // must survive it like any other member of the enlarged world.
  ClusterContext cluster(net::SystemConfig::lassen(1), config());
  McrDlOptions opts;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  opts.fault.plan.specs.push_back(FaultSpec::rejoin_rank(1, 30000.0));
  add_loss(opts.fault.plan, /*rank=*/2, /*at=*/31500.0);
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  const RejoinRun run = run_two_phase(mcr, cluster, /*iters=*/6, /*rejoin_us=*/30000.0);
  EXPECT_TRUE(run.died_phase_one[1]);
  check_alive_agree(run, {0, 1, 3});

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 2u);
  EXPECT_EQ(stats.ranks_rejoined, 1u);
  EXPECT_EQ(stats.epochs, 3u) << "shrink + grow + shrink";
  EXPECT_FALSE(mcr.recovery().lost(1));
  EXPECT_TRUE(mcr.recovery().lost(2));
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 3}));
}

TEST_P(RejoinTest, StaleEpochOpsAfterGrowAreBouncedNotDeadlocked) {
  // Phase two opens with a transient window whose retry backoff spans a
  // second loss: the retries — issued by the enlarged world, including the
  // freshly rejoined rank 1 — reach the issue stage stamped with the grow
  // epoch in a newer epoch's world. They must be bounced (stale_rejections)
  // and replayed on the shrunk group, never issued against it.
  ClusterContext cluster(net::SystemConfig::lassen(1), config());
  McrDlOptions opts;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  opts.fault.plan.specs.push_back(FaultSpec::rejoin_rank(1, 30000.0));
  opts.fault.plan.specs.push_back(
      FaultSpec::transient("mv2-gdr", 1.0, /*from_us=*/30401.0, /*until_us=*/31000.0));
  opts.fault.plan.specs.push_back(FaultSpec::lose_rank(2, 31000.0));
  opts.fault.retry.base_backoff_us = 2000.0;  // the backoff crosses the loss
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  const RejoinRun run = run_two_phase(mcr, cluster, /*iters=*/6, /*rejoin_us=*/30000.0);
  EXPECT_TRUE(run.died_phase_one[1]);
  check_alive_agree(run, {0, 1, 3});

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_GT(stats.stale_rejections, 0u);
  EXPECT_EQ(stats.ranks_rejoined, 1u);
  EXPECT_EQ(stats.ranks_lost, 2u);
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 3}));
}

INSTANTIATE_TEST_SUITE_P(Engines, RejoinTest,
                         ::testing::Values(sim::ExecutionConfig::serial(),
                                           sim::ExecutionConfig::parallel(2),
                                           sim::ExecutionConfig::parallel(4)),
                         config_name);

}  // namespace
}  // namespace mcrdl::fault
