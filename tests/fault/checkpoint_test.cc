// CheckpointStore format and round-trip contracts (DESIGN.md §13): sections
// serialize sorted and deterministically, save -> restore -> save is
// byte-identical, unknown sections survive a pass through an older build,
// and malformed inputs are rejected before any RestoreFn runs.
#include "src/fault/checkpoint.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mcrdl::fault {
namespace {

// A toy key=value section backed by a sorted map, as a stand-in for the
// real registrants (recovery manager, tuner, admission controller).
struct KvSection {
  std::map<std::string, std::string> kv;

  std::string save() const {
    std::string out;
    for (const auto& [k, v] : kv) out += k + "=" + v + "\n";
    return out;
  }
  void restore(const std::string& body) {
    kv.clear();
    std::size_t pos = 0;
    while (pos < body.size()) {
      const std::size_t nl = body.find('\n', pos);
      const std::string line = body.substr(pos, nl - pos);
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) throw InvalidArgument("kv section: bad line " + line);
      kv[line.substr(0, eq)] = line.substr(eq + 1);
      pos = nl == std::string::npos ? body.size() : nl + 1;
    }
  }
  void attach(CheckpointStore& store, const std::string& name) {
    store.register_section(
        name, [this] { return save(); }, [this](const std::string& body) { restore(body); });
  }
};

TEST(CheckpointStore, EmptyStoreIsJustTheHeader) {
  CheckpointStore store;
  EXPECT_EQ(store.save(), "mcrdl-checkpoint 1\n");
  EXPECT_EQ(store.restores(), 0u);
}

TEST(CheckpointStore, SectionsSerializeSortedByName) {
  CheckpointStore store;
  KvSection beta{{{"b", "2"}}};
  KvSection alpha{{{"a", "1"}}};
  beta.attach(store, "beta");
  alpha.attach(store, "alpha");
  EXPECT_EQ(store.save(),
            "mcrdl-checkpoint 1\n"
            "section alpha 1\n"
            "a=1\n"
            "section beta 1\n"
            "b=2\n");
}

TEST(CheckpointStore, SaveRestoreSaveIsByteIdentical) {
  CheckpointStore a;
  KvSection state{{{"epoch", "3"}, {"lost", "1 4"}}};
  state.attach(a, "recovery");
  const std::string first = a.save();

  CheckpointStore b;
  KvSection other;  // starts empty, populated by restore
  other.attach(b, "recovery");
  b.restore(first);
  EXPECT_EQ(b.restores(), 1u);
  EXPECT_EQ(other.kv, state.kv);
  EXPECT_EQ(b.save(), first) << "save -> restore -> save must round-trip byte-identically";
}

TEST(CheckpointStore, UnknownSectionsAreRetainedVerbatim) {
  // A checkpoint written by a build with more subsystems passes through a
  // store that only knows "recovery": the stranger section re-emits intact.
  CheckpointStore store;
  KvSection rec{{{"epoch", "1"}}};
  rec.attach(store, "recovery");
  const std::string text =
      "mcrdl-checkpoint 1\n"
      "section future-subsystem 2\n"
      "opaque line one\n"
      "opaque line two\n"
      "section recovery 1\n"
      "epoch=7\n";
  store.restore(text);
  EXPECT_EQ(rec.kv.at("epoch"), "7");
  EXPECT_EQ(store.retained(), std::vector<std::string>{"future-subsystem"});
  EXPECT_EQ(store.save(), text);  // sorted order happens to match here
}

TEST(CheckpointStore, ZeroLineSectionsRoundTrip) {
  CheckpointStore store;
  KvSection empty;
  empty.attach(store, "empty");
  const std::string text = store.save();
  EXPECT_EQ(text,
            "mcrdl-checkpoint 1\n"
            "section empty 0\n");
  store.restore(text);
  EXPECT_TRUE(empty.kv.empty());
  EXPECT_EQ(store.save(), text);
}

TEST(CheckpointStore, RejectsBadMagicVersionAndTruncation) {
  CheckpointStore store;
  KvSection rec;
  rec.attach(store, "recovery");
  EXPECT_THROW(store.restore(""), InvalidArgument);
  EXPECT_THROW(store.restore("not-a-checkpoint 1\n"), InvalidArgument);
  EXPECT_THROW(store.restore("mcrdl-checkpoint 99\n"), InvalidArgument);
  // Truncated body: the section header promises more lines than exist.
  EXPECT_THROW(store.restore("mcrdl-checkpoint 1\n"
                             "section recovery 2\n"
                             "epoch=1\n"),
               InvalidArgument);
  // The same section twice is ambiguous, not last-wins.
  EXPECT_THROW(store.restore("mcrdl-checkpoint 1\n"
                             "section recovery 1\n"
                             "epoch=1\n"
                             "section recovery 1\n"
                             "epoch=2\n"),
               InvalidArgument);
  EXPECT_EQ(store.restores(), 0u) << "failed restores must not count";
}

TEST(CheckpointStore, WholeFileParsesBeforeAnyRestoreDispatch) {
  // The second section is malformed at the *container* level; the first
  // section's RestoreFn must not have run.
  CheckpointStore store;
  KvSection rec{{{"epoch", "0"}}};
  rec.attach(store, "recovery");
  EXPECT_THROW(store.restore("mcrdl-checkpoint 1\n"
                             "section recovery 1\n"
                             "epoch=9\n"
                             "garbage-instead-of-section\n"),
               InvalidArgument);
  EXPECT_EQ(rec.kv.at("epoch"), "0") << "a malformed checkpoint must not partially apply";
}

TEST(CheckpointStore, UnregisterMakesASectionUnknown) {
  CheckpointStore store;
  KvSection rec{{{"epoch", "5"}}};
  rec.attach(store, "recovery");
  const std::string text = store.save();
  store.unregister_section("recovery");
  EXPECT_FALSE(store.has_section("recovery"));
  store.restore(text);  // now retained, not dispatched
  EXPECT_EQ(store.retained(), std::vector<std::string>{"recovery"});
  EXPECT_EQ(store.save(), text);
}

TEST(CheckpointStore, FileRoundTrip) {
  CheckpointStore store;
  KvSection rec{{{"epoch", "2"}, {"world", "8"}}};
  rec.attach(store, "recovery");
  const std::string path = ::testing::TempDir() + "/mcrdl_ckpt_test.txt";
  store.save_file(path);

  CheckpointStore loaded;
  KvSection copy;
  copy.attach(loaded, "recovery");
  loaded.restore_file(path);
  EXPECT_EQ(copy.kv, rec.kv);
  EXPECT_EQ(loaded.save(), store.save());
  std::remove(path.c_str());
  EXPECT_THROW(loaded.restore_file(path), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl::fault
