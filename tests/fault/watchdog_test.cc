// Rendezvous watchdog: timed-out collectives must fail with a message that
// names who arrived and who didn't, and a clean run must be unaffected.
#include "src/fault/watchdog.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/mcr_dl.h"

namespace mcrdl::fault {
namespace {

TEST(Watchdog, DescribeTimeoutNamesArrivedAndMissingRanks) {
  const std::string msg =
      describe_timeout(OpType::AllReduce, "mv2-gdr", 1000.0, {0, 1, 2}, {3});
  EXPECT_NE(msg.find("all_reduce"), std::string::npos);
  EXPECT_NE(msg.find("'mv2-gdr'"), std::string::npos);
  EXPECT_NE(msg.find("1000"), std::string::npos);
  EXPECT_NE(msg.find("arrived ranks: [0, 1, 2]"), std::string::npos);
  EXPECT_NE(msg.find("missing ranks: [3]"), std::string::npos);
}

TEST(Watchdog, DescribeTimeoutHandlesEmptyArrivedList) {
  const std::string msg = describe_timeout(OpType::Barrier, "nccl", 5.0, {}, {0, 1});
  EXPECT_NE(msg.find("arrived ranks: [none]"), std::string::npos);
}

TEST(Watchdog, ArmFiresAtTheDeadline) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  bool fired = false;
  cluster.run_spmd(1, [&](int) {
    cluster.faults().watchdog().arm(10.0, [&] { fired = true; });
    cluster.scheduler().sleep_for(20.0);
  });
  EXPECT_TRUE(fired);
  EXPECT_EQ(cluster.faults().watchdog().fired(), 1u);
}

TEST(Watchdog, DisarmedTimerNeverFiresNorAdvancesTime) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  bool fired = false;
  cluster.run_spmd(1, [&](int) {
    const std::uint64_t id = cluster.faults().watchdog().arm(1e9, [&] { fired = true; });
    cluster.faults().watchdog().disarm(id);
    cluster.scheduler().sleep_for(20.0);
  });
  EXPECT_FALSE(fired);
  // A cancelled timer is popped without advancing virtual time.
  EXPECT_DOUBLE_EQ(cluster.scheduler().now(), 20.0);
}

TEST(Watchdog, DisarmAfterFireIsSafeAndCountsOneFiring) {
  // Engines disarm their watchdog when the rendezvous completes — which may
  // be after the timer already fired (the callback failed the rendezvous,
  // the waiters unwound, and the completion path still runs its cleanup).
  // Cancelling the spent timer must be a no-op, not a crash or a re-fire.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  int fired = 0;
  cluster.run_spmd(1, [&](int) {
    const std::uint64_t id = cluster.faults().watchdog().arm(10.0, [&] { ++fired; });
    cluster.scheduler().sleep_for(20.0);  // sleeps past the deadline
    cluster.faults().watchdog().disarm(id);
    cluster.scheduler().sleep_for(20.0);
  });
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cluster.faults().watchdog().fired(), 1u);
}

TEST(Watchdog, ReArmAfterDisarmFiresTheNewDeadline) {
  // Re-arming the same logical rendezvous (disarm, then arm again — the
  // retry path after a transient fault) must run the new deadline only.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  int first = 0, second = 0;
  cluster.run_spmd(1, [&](int) {
    const std::uint64_t id = cluster.faults().watchdog().arm(1e6, [&] { ++first; });
    cluster.faults().watchdog().disarm(id);
    cluster.faults().watchdog().arm(10.0, [&] { ++second; });
    cluster.scheduler().sleep_for(20.0);
  });
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(cluster.faults().watchdog().fired(), 1u);
}

TEST(Watchdog, ZeroDeadlineFiresImmediatelyWithoutAdvancingTime) {
  // A zero-timeout deadline is degenerate but legal: it fires as soon as the
  // arming actor blocks, at the same virtual instant it was armed.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  SimTime fired_at = -1.0;
  cluster.run_spmd(1, [&](int) {
    cluster.scheduler().sleep_for(5.0);
    cluster.faults().watchdog().arm(0.0, [&] { fired_at = cluster.scheduler().now(); });
    cluster.scheduler().sleep_for(1.0);
  });
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_EQ(cluster.faults().watchdog().fired(), 1u);
}

TEST(WatchdogEndToEnd, AbsentRankTimesOutNamingTheMissingRank) {
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.watchdog_deadline_us = 1000.0;
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});
  try {
    cluster.run_spmd([&](int rank) {
      if (rank == 3) return;  // crashed process: never joins
      Api api = mcr.on(rank);
      api.barrier("mv2-gdr");
    });
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("barrier"), std::string::npos);
    EXPECT_NE(what.find("missing ranks: [3]"), std::string::npos);
    EXPECT_NE(what.find("arrived ranks: [0, 1, 2]"), std::string::npos);
  }
  EXPECT_GT(cluster.faults().stats().watchdog_timeouts, 0u);
}

TEST(WatchdogEndToEnd, CleanRunIsUnaffectedByAnArmedWatchdog) {
  auto timed_run = [](SimTime deadline) {
    ClusterContext cluster(net::SystemConfig::lassen(1));
    McrDlOptions opts;
    opts.fault.enabled = true;
    opts.fault.plan.watchdog_deadline_us = deadline;
    McrDl mcr(&cluster, opts);
    mcr.init({"mv2-gdr"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      Tensor t = Tensor::full({1024}, DType::F32, 1.0, cluster.device(rank));
      for (int i = 0; i < 4; ++i) api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
    });
    EXPECT_EQ(cluster.faults().stats().watchdog_timeouts, 0u);
    return cluster.scheduler().now();
  };
  // Disarmed-before-firing timers are cancelled without advancing time, so
  // the timeline with a (generous) watchdog is identical to none at all.
  EXPECT_DOUBLE_EQ(timed_run(0.0), timed_run(1e9));
}

}  // namespace
}  // namespace mcrdl::fault
