// Elastic recovery end-to-end: quiesce -> shrink -> resume after permanent
// rank loss. Every scenario runs on mv2-gdr (host-synchronous, so errors
// surface to the issuing rank — the stream backends' async gap is a
// documented limitation) and must terminate deterministically: survivors
// agree with each other, dead ranks unwind cleanly, and nothing hangs.
#include "src/fault/recovery.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/mcr_dl.h"
#include "src/core/trace.h"

namespace mcrdl::fault {
namespace {

// --- unit level -------------------------------------------------------------

TEST(RecoveryManager, DescribeRankLossNamesOpBackendAndRanks) {
  const std::string msg = describe_rank_loss(OpType::AllReduce, "mv2-gdr", {3, 7});
  EXPECT_NE(msg.find(op_name(OpType::AllReduce)), std::string::npos);
  EXPECT_NE(msg.find("mv2-gdr"), std::string::npos);
  EXPECT_NE(msg.find("[3, 7]"), std::string::npos);
  EXPECT_NE(msg.find("permanently lost"), std::string::npos);
}

TEST(RecoveryManager, PlanRoundTripsRankLossSpecs) {
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::lose_rank(3, 2500.0));
  plan.specs.push_back(FaultSpec::lose_rank(5, 2500.0));
  const FaultPlan parsed = FaultPlan::parse(plan.serialize());
  ASSERT_EQ(parsed.specs.size(), 2u);
  EXPECT_EQ(parsed.specs[0].kind, FaultKind::RankLoss);
  EXPECT_EQ(parsed.specs[0].rank, 3);
  EXPECT_DOUBLE_EQ(parsed.specs[0].from_us, 2500.0);
  EXPECT_EQ(parsed.specs[1].rank, 5);
}

TEST(RecoveryManager, ArmWithoutRankLossSpecsStaysDisarmed) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::outage("nccl", 100.0));
  inj.configure(plan);
  inj.recovery().arm(4);
  EXPECT_FALSE(inj.recovery().armed());
  EXPECT_EQ(inj.recovery().epoch(), 0u);
}

TEST(RecoveryManager, LossAdvancesEpochAndShrinksSurvivors) {
  sim::Scheduler sched;
  FaultInjector inj(&sched);
  FaultPlan plan;
  plan.specs.push_back(FaultSpec::lose_rank(3, 1e9));  // far future: never fires
  inj.configure(plan);
  RecoveryManager& rec = inj.recovery();
  rec.arm(8);
  ASSERT_TRUE(rec.armed());
  EXPECT_EQ(rec.phase(), RecoveryPhase::Idle);

  std::uint64_t drained_with = 0;
  const std::uint64_t id = rec.register_drain([&](const std::vector<int>& lost) {
    drained_with = lost.size();
    return std::uint64_t{2};
  });
  rec.on_rank_loss({3, 5});
  EXPECT_EQ(rec.epoch(), 1u);
  EXPECT_EQ(rec.phase(), RecoveryPhase::Resume);
  EXPECT_EQ(drained_with, 2u);
  EXPECT_TRUE(rec.lost(3));
  EXPECT_TRUE(rec.lost(5));
  EXPECT_FALSE(rec.lost(0));
  EXPECT_EQ(rec.survivors(), (std::vector<int>{0, 1, 2, 4, 6, 7}));
  EXPECT_EQ(rec.shrink_group({2, 3, 4, 5}), (std::vector<int>{2, 4}));
  EXPECT_EQ(rec.stats().quiesced_ops, 2u);
  EXPECT_EQ(rec.stats().ranks_lost, 2u);
  EXPECT_EQ(rec.stats().epochs, 1u);

  // A second loss composes: already-lost ranks are ignored, epoch advances.
  rec.on_rank_loss({3, 6});
  EXPECT_EQ(rec.epoch(), 2u);
  EXPECT_EQ(rec.stats().ranks_lost, 3u);
  EXPECT_EQ(rec.survivors(), (std::vector<int>{0, 1, 2, 4, 7}));
  rec.unregister_drain(id);
}

// --- end-to-end scenarios ---------------------------------------------------

struct ElasticRun {
  std::vector<double> finals;       // final tensor value per rank (0 if dead)
  std::vector<bool> died;           // rank exited before finishing its loop
  std::vector<bool> died_by_error;  // ... specifically via RankLostError
};

// `iters` allreduce-sum iterations on mv2-gdr, 400us apart, starting from
// rank+1. A rank whose loss instant has passed exits at the loop top; a rank
// whose collective surfaces RankLostError (the casualty itself — survivors
// have it replayed transparently by the recover stage) exits through the
// catch. Mirrors how a real training loop would consume the subsystem.
ElasticRun run_elastic(McrDl& mcr, ClusterContext& cluster, int iters, std::size_t elems = 64) {
  ElasticRun out;
  out.finals.assign(static_cast<std::size_t>(cluster.world_size()), 0.0);
  out.died.assign(static_cast<std::size_t>(cluster.world_size()), false);
  out.died_by_error.assign(static_cast<std::size_t>(cluster.world_size()), false);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor t = Tensor::full({static_cast<int>(elems)}, DType::F32,
                            static_cast<double>(rank + 1), cluster.device(rank));
    for (int i = 0; i < iters; ++i) {
      if (cluster.faults().rank_lost(rank)) {
        out.died[static_cast<std::size_t>(rank)] = true;
        return;
      }
      try {
        api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
      } catch (const RankLostError&) {
        out.died[static_cast<std::size_t>(rank)] = true;
        out.died_by_error[static_cast<std::size_t>(rank)] = true;
        return;
      }
      cluster.scheduler().sleep_for(400.0);
    }
    api.synchronize();
    out.finals[static_cast<std::size_t>(rank)] = t.get(0);
  });
  return out;
}

// Survivors must agree, and their common value must be explainable as: k
// iterations completed on the full world (k >= 1 leaves everyone holding
// sum(1..m) * m^(k-1)), then iters-k on the shrunk one — or all iterations on
// the shrunk world when the loss preempted iteration 0 (k == 0).
void check_survivor_value(const ElasticRun& run, int world, int iters) {
  std::vector<int> survivors;
  for (int r = 0; r < world; ++r) {
    if (!run.died[static_cast<std::size_t>(r)]) survivors.push_back(r);
  }
  ASSERT_FALSE(survivors.empty());
  const double got = run.finals[static_cast<std::size_t>(survivors.front())];
  for (int r : survivors) {
    EXPECT_DOUBLE_EQ(run.finals[static_cast<std::size_t>(r)], got)
        << "survivors diverged at rank " << r;
  }
  const double m = static_cast<double>(world);
  const double w = static_cast<double>(survivors.size());
  double sub_sum = 0.0;
  for (int r : survivors) sub_sum += static_cast<double>(r + 1);
  bool matched = false;
  for (int k = 0; k <= iters && !matched; ++k) {
    const double candidate =
        k == 0 ? sub_sum * std::pow(w, iters - 1)
               : (m * (m + 1) / 2.0) * std::pow(m, k - 1) * std::pow(w, iters - k);
    matched = got == candidate;
  }
  EXPECT_TRUE(matched) << "survivor value " << got
                       << " is not a full-world/shrunk-world iteration split";
}

// The deterministic loss recipe used below: the dying rank goes silent
// (straggles) shortly before it is declared lost, so the survivors are
// parked in a pending rendezvous when the loss event fires — exactly the
// state quiesce exists to drain.
void add_loss(FaultPlan& plan, int rank, SimTime at) {
  plan.specs.push_back(FaultSpec::straggler(rank, 10 * at, /*from_us=*/at * 0.8));
  plan.specs.push_back(FaultSpec::lose_rank(rank, at));
}

TEST(ElasticRecovery, SingleRankLossShrinksAndSurvivorsAgree) {
  ClusterContext cluster(net::SystemConfig::lassen(1));  // 4 ranks
  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});
  ASSERT_TRUE(mcr.recovery().armed());

  const ElasticRun run = run_elastic(mcr, cluster, /*iters=*/10);
  EXPECT_TRUE(run.died[1]);
  EXPECT_FALSE(run.died[0]);
  EXPECT_FALSE(run.died[2]);
  EXPECT_FALSE(run.died[3]);
  check_survivor_value(run, cluster.world_size(), 10);

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 1u);
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_GT(stats.quiesced_ops, 0u);
  EXPECT_GT(stats.recovered_ops, 0u);
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 2, 3}));

  // The counters are mirrored into the resilience report...
  ASSERT_NE(mcr.failover(), nullptr);
  const ResilienceReport& report = mcr.failover()->report();
  EXPECT_EQ(report.ranks_lost, 1u);
  EXPECT_EQ(report.epochs, 1u);
  EXPECT_EQ(report.recovered, stats.recovered_ops);
  EXPECT_EQ(report.failed, 0u);

  // ...and recovered ops surface in the comm log and the Chrome trace.
  bool saw_recovered = false;
  for (const CommRecord& r : mcr.logger().records()) {
    if (r.recovered) {
      saw_recovered = true;
      EXPECT_EQ(r.epoch, 1u);
      EXPECT_EQ(r.fault, "rank_lost");
    }
  }
  EXPECT_TRUE(saw_recovered);
  const std::string trace = to_chrome_trace(mcr.logger());
  EXPECT_NE(trace.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"recovered\":true"), std::string::npos);
  EXPECT_NE(trace.find("\"fault\":\"rank_lost\""), std::string::npos);
}

TEST(ElasticRecovery, WholeNodeLossIsOneEpoch) {
  ClusterContext cluster(net::SystemConfig::lassen(2));  // 8 ranks, 4 per node
  McrDlOptions opts;
  opts.fault.enabled = true;
  // Node 1 (ranks 4..7) goes down at one instant; one recovery epoch.
  opts.fault.plan.specs.push_back(FaultSpec::straggler(4, 25000.0, /*from_us=*/2000.0));
  for (int r = 4; r < 8; ++r) opts.fault.plan.specs.push_back(FaultSpec::lose_rank(r, 2500.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  // 7 iterations keeps every candidate value below 2^24, so the F32 sums
  // stay exact and the survivor-agreement check can compare doubles exactly.
  const int iters = 7;
  const ElasticRun run = run_elastic(mcr, cluster, iters);
  for (int r = 0; r < 4; ++r) EXPECT_FALSE(run.died[static_cast<std::size_t>(r)]);
  for (int r = 4; r < 8; ++r) EXPECT_TRUE(run.died[static_cast<std::size_t>(r)]);
  check_survivor_value(run, cluster.world_size(), iters);

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 4u);
  EXPECT_EQ(stats.epochs, 1u) << "simultaneous losses must collapse into one epoch";
  EXPECT_GT(stats.recovered_ops, 0u);
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ElasticRecovery, LossDuringInFlightAllreduceDrainsAndReplays) {
  // Rank 2 (a survivor) straggles into iteration ~6 while rank 1 has already
  // joined: the allreduce is in flight — issued on every live rank, pending
  // at the rendezvous — when rank 1 is declared lost. The drain must cancel
  // it and the survivors (including the straggler, which finds the cancelled
  // rendezvous when it finally arrives) must replay it on the shrunk group.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(FaultSpec::straggler(2, 10000.0, /*from_us=*/2050.0,
                                                       /*until_us=*/2500.0));
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  const int iters = 10;
  const ElasticRun run = run_elastic(mcr, cluster, iters);
  EXPECT_TRUE(run.died[1]);
  EXPECT_FALSE(run.died[0]);
  EXPECT_FALSE(run.died[2]);
  EXPECT_FALSE(run.died[3]);
  check_survivor_value(run, cluster.world_size(), iters);

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_GT(stats.quiesced_ops, 0u) << "the in-flight allreduce was not drained";
  EXPECT_GT(stats.recovered_ops, 0u);
}

TEST(ElasticRecovery, LossDuringRecoveryComposesEpochs) {
  // Rank 1 dies at 2500us. Rank 2 straggles its epoch-1 replay, so when it
  // is itself declared lost at 2600us the cluster is still mid-recovery: the
  // second loss must cancel the epoch-1 replays and compose into epoch 2.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/2500.0);
  opts.fault.plan.specs.push_back(FaultSpec::straggler(2, 25000.0, /*from_us=*/2500.0));
  opts.fault.plan.specs.push_back(FaultSpec::lose_rank(2, 2600.0));
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  const int iters = 10;
  const ElasticRun run = run_elastic(mcr, cluster, iters);
  EXPECT_TRUE(run.died[1]);
  EXPECT_TRUE(run.died[2]);
  EXPECT_FALSE(run.died[0]);
  EXPECT_FALSE(run.died[3]);
  // Two shrinks with replays in between make the exact value recipe-specific;
  // the invariant that matters is that the survivors agree and finished.
  EXPECT_DOUBLE_EQ(run.finals[0], run.finals[3]);
  EXPECT_GT(run.finals[0], 0.0);

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_EQ(stats.ranks_lost, 2u);
  EXPECT_EQ(stats.epochs, 2u) << "a loss during recovery must open a fresh epoch";
  EXPECT_GT(stats.recovered_ops, 0u);
  EXPECT_EQ(mcr.recovery().survivors(), (std::vector<int>{0, 3}));
}

TEST(ElasticRecovery, StaleEpochOpsAreRejectedNotDeadlocked) {
  // A transient fault parks every rank in a retry backoff that spans the
  // loss instant. The retry then reaches the issue stage stamped with epoch
  // 0 in an epoch-1 world — it must be bounced (stale_rejections) and
  // replayed on the shrunk communicator, never issued against it.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  opts.fault.plan.specs.push_back(
      FaultSpec::transient("mv2-gdr", 1.0, /*from_us=*/1500.0, /*until_us=*/2500.0));
  opts.fault.plan.specs.push_back(FaultSpec::lose_rank(1, 2500.0));
  opts.fault.retry.base_backoff_us = 2000.0;  // the backoff crosses the loss
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  const int iters = 10;
  const ElasticRun run = run_elastic(mcr, cluster, iters);
  EXPECT_TRUE(run.died[1]);
  EXPECT_FALSE(run.died[0]);
  check_survivor_value(run, cluster.world_size(), iters);

  const RecoveryStats& stats = mcr.recovery().stats();
  EXPECT_GT(stats.stale_rejections, 0u);
  EXPECT_GT(stats.recovered_ops, 0u);
  EXPECT_EQ(stats.epochs, 1u);
}

TEST(ElasticRecovery, UnarmedWatchdogNamesTheLostRank) {
  // Without recovery armed (fault plan installed directly on the cluster,
  // not through McrDl options), a lost rank still gets a better diagnosis
  // than a generic timeout: the watchdog converts it to RankLostError when
  // every missing rank is lost.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  FaultPlan plan;
  plan.watchdog_deadline_us = 2000.0;
  plan.specs.push_back(FaultSpec::lose_rank(1, 500.0));
  cluster.faults().configure(plan);
  McrDl mcr(&cluster);
  mcr.init({"mv2-gdr"});
  ASSERT_FALSE(mcr.recovery().armed());

  std::string message;
  try {
    cluster.run_spmd([&](int rank) {
      if (rank == 1) return;  // never joins: dead from the workload's view
      Api api = mcr.on(rank);
      Tensor t = Tensor::full({16}, DType::F32, 1.0, cluster.device(rank));
      api.all_reduce("mv2-gdr", t, ReduceOp::Sum);
    });
    FAIL() << "expected RankLostError";
  } catch (const RankLostError& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("[1]"), std::string::npos) << message;
  EXPECT_NE(message.find("permanently lost"), std::string::npos) << message;
}

TEST(ElasticRecovery, ShapeCoupledOpsAreUnrecoverable) {
  // An all_gather's output is sized for the old world; replaying it on a
  // smaller group cannot fill what the caller allocated. The loss must
  // surface (as RankLostError) instead of silently producing a short gather.
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDlOptions opts;
  opts.fault.enabled = true;
  add_loss(opts.fault.plan, /*rank=*/1, /*at=*/700.0);
  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  std::vector<bool> saw_loss(static_cast<std::size_t>(cluster.world_size()), false);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    const int world = cluster.world_size();
    for (int i = 0; i < 6; ++i) {
      if (cluster.faults().rank_lost(rank)) return;
      Tensor in = Tensor::full({16}, DType::F32, rank + 1.0, cluster.device(rank));
      Tensor out_t = Tensor::zeros({16 * world}, DType::F32, cluster.device(rank));
      try {
        api.all_gather("mv2-gdr", out_t, in);
      } catch (const RankLostError&) {
        saw_loss[static_cast<std::size_t>(rank)] = true;
        return;
      }
      cluster.scheduler().sleep_for(400.0);
    }
  });
  // Every survivor saw the unrecoverable loss; nothing hung, nothing was
  // silently replayed at the wrong shape.
  EXPECT_TRUE(saw_loss[0]);
  EXPECT_TRUE(saw_loss[2]);
  EXPECT_TRUE(saw_loss[3]);
  EXPECT_EQ(mcr.recovery().stats().recovered_ops, 0u);
}

}  // namespace
}  // namespace mcrdl::fault
