// Tests for the tuning table and tuning suite: lookup semantics,
// serialisation round trips, and suite-generated tables matching the
// cost-model orderings (the Table II pipeline).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "src/tune/tuning.h"
#include "src/core/mcr_dl.h"
#include "src/tune/online_tuner.h"
#include "src/net/cost.h"

namespace mcrdl {
namespace {

TEST(TuningTable, ExactLookup) {
  TuningTable t;
  t.set(OpType::AllGather, 64, 2048, "mv2-gdr");
  t.set(OpType::AllGather, 64, 8192, "nccl");
  t.set(OpType::AllGather, 64, 32768, "sccl");
  EXPECT_EQ(t.lookup(OpType::AllGather, 64, 256), "mv2-gdr");
  EXPECT_EQ(t.lookup(OpType::AllGather, 64, 2048), "mv2-gdr");
  EXPECT_EQ(t.lookup(OpType::AllGather, 64, 2049), "nccl");
  EXPECT_EQ(t.lookup(OpType::AllGather, 64, 32768), "sccl");
}

TEST(TuningTable, OversizedMessagesUseLargestBucket) {
  TuningTable t;
  t.set(OpType::AllReduce, 8, 1024, "mv2-gdr");
  t.set(OpType::AllReduce, 8, 65536, "nccl");
  EXPECT_EQ(t.lookup(OpType::AllReduce, 8, 10 << 20), "nccl");
}

TEST(TuningTable, NearestWorldSizeResolution) {
  TuningTable t;
  t.set(OpType::AllReduce, 16, 1024, "a16");
  t.set(OpType::AllReduce, 64, 1024, "a64");
  EXPECT_EQ(t.lookup(OpType::AllReduce, 16, 512), "a16");
  EXPECT_EQ(t.lookup(OpType::AllReduce, 32, 512), "a64");   // next size up
  EXPECT_EQ(t.lookup(OpType::AllReduce, 128, 512), "a64");  // beyond: largest
  EXPECT_EQ(t.lookup(OpType::AllReduce, 4, 512), "a16");
}

TEST(TuningTable, WorldBetweenTabulatedPointsPrefersNextUp) {
  // Interpolation rule: an untabulated world resolves to the next tabulated
  // world *up* (collective latency grows with scale, so the larger grid
  // point's winner is the safe extrapolation), not the nearest neighbour.
  TuningTable t;
  t.set(OpType::AllGather, 8, 1024, "a8");
  t.set(OpType::AllGather, 32, 1024, "a32");
  t.set(OpType::AllGather, 128, 1024, "a128");
  EXPECT_EQ(t.lookup(OpType::AllGather, 9, 512), "a32");    // nearest is 8; up wins
  EXPECT_EQ(t.lookup(OpType::AllGather, 31, 512), "a32");
  EXPECT_EQ(t.lookup(OpType::AllGather, 33, 512), "a128");
  EXPECT_EQ(t.lookup(OpType::AllGather, 127, 512), "a128");
}

TEST(TuningTable, SingleEntryTableServesEveryQuery) {
  // Degenerate but common during online warm-up: one grid point must cover
  // every (world, bytes) query for its op without throwing.
  TuningTable t;
  t.set(OpType::AllReduce, 16, 4096, "nccl");
  EXPECT_EQ(t.lookup(OpType::AllReduce, 16, 4096), "nccl");
  EXPECT_EQ(t.lookup(OpType::AllReduce, 2, 1), "nccl");          // below on both axes
  EXPECT_EQ(t.lookup(OpType::AllReduce, 1024, 64 << 20), "nccl");  // above on both axes
  EXPECT_EQ(t.num_entries(), 1u);
  // Round-trips through the text format like any other table.
  EXPECT_EQ(TuningTable::parse(t.serialize()).lookup(OpType::AllReduce, 8, 123), "nccl");
}

TEST(TuningTable, OnlineLearnedTableRoundTrips) {
  // An online-produced table (tune::OnlineTuner::to_table) uses pow2 size
  // buckets the static suite never emits; it must still serialise, parse,
  // and look up identically — that is the warm-start contract.
  tune::OnlineTunerConfig cfg;
  cfg.enabled = true;
  tune::OnlineTuner tuner(cfg);
  const std::vector<std::string> cands = {"nccl", "mv2-gdr"};
  for (int i = 0; i < 8; ++i) {
    tuner.select(OpType::AllReduce, 8, 200 * 1000, 0, cands);
    tuner.observe(OpType::AllReduce, 8, 200 * 1000, "nccl", 50.0);
    tuner.observe(OpType::AllReduce, 8, 200 * 1000, "mv2-gdr", 90.0);
  }
  TuningTable learned = tuner.to_table();
  ASSERT_GE(learned.num_entries(), 1u);
  TuningTable reparsed = TuningTable::parse(learned.serialize());
  EXPECT_EQ(reparsed.num_entries(), learned.num_entries());
  const std::size_t bucket = tune::OnlineTuner::bucket(200 * 1000);
  EXPECT_EQ(reparsed.lookup(OpType::AllReduce, 8, bucket),
            learned.lookup(OpType::AllReduce, 8, bucket));
  EXPECT_EQ(reparsed.lookup(OpType::AllReduce, 8, bucket), "nccl");
}

TEST(TuningTable, MissingOpThrows) {
  TuningTable t;
  t.set(OpType::AllReduce, 8, 1024, "nccl");
  EXPECT_THROW(t.lookup(OpType::AllGather, 8, 512), InvalidArgument);
  EXPECT_TRUE(t.has(OpType::AllReduce));
  EXPECT_FALSE(t.has(OpType::AllGather));
}

TEST(TuningTable, EntryCountFormula) {
  // Paper: entries = Num_Collectives x Num_Scales x Num_Message_Sizes.
  TuningTable t;
  for (OpType op : {OpType::AllReduce, OpType::AllGather}) {
    for (int world : {8, 16, 32}) {
      for (std::size_t bytes : {1024u, 4096u, 16384u, 65536u}) {
        t.set(op, world, bytes, "nccl");
      }
    }
  }
  EXPECT_EQ(t.num_entries(), 2u * 3u * 4u);
}

TEST(TuningTable, SerializeParseRoundTrip) {
  TuningTable t;
  t.set(OpType::AllGather, 64, 2048, "mv2-gdr");
  t.set(OpType::AllToAllSingle, 32, 1 << 20, "nccl");
  TuningTable r = TuningTable::parse(t.serialize());
  EXPECT_EQ(r.lookup(OpType::AllGather, 64, 100), "mv2-gdr");
  EXPECT_EQ(r.lookup(OpType::AllToAllSingle, 32, 1 << 19), "nccl");
  EXPECT_EQ(r.num_entries(), 2u);
}

TEST(TuningTable, SaveLoadRoundTrip) {
  TuningTable t;
  t.set(OpType::Broadcast, 16, 4096, "sccl");
  const std::string path = ::testing::TempDir() + "/mcrdl_tuning_test.txt";
  t.save(path);
  TuningTable r = TuningTable::load(path);
  EXPECT_EQ(r.lookup(OpType::Broadcast, 16, 1), "sccl");
  std::remove(path.c_str());
}

TEST(TuningTable, ParseRejectsGarbage) {
  EXPECT_THROW(TuningTable::parse("all_reduce not_a_number 12 nccl\n"), InvalidArgument);
  EXPECT_THROW(TuningTable::parse("frobnicate 8 1024 nccl\n"), InvalidArgument);
}

TEST(TuningTable, ParseRejectsTrailingGarbageWithLineNumber) {
  // Regression: the parser used to read exactly four fields and silently
  // drop the rest of the line, so a table damaged by a bad merge ("nccl
  // nccl") or a stray column loaded as if it were fine.
  const std::string text =
      "# header\n"
      "all_reduce 8 1024 nccl\n"
      "all_gather 8 2048 mv2-gdr extra-token\n";
  try {
    TuningTable::parse(text);
    FAIL() << "trailing garbage accepted";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
    EXPECT_NE(msg.find("extra-token"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
}

TEST(TuningTable, RoundTripThenDamagedCopyIsRejected) {
  // serialize() output must parse, and any single line with an appended
  // token must not.
  TuningTable t;
  t.set(OpType::AllGather, 64, 2048, "mv2-gdr");
  t.set(OpType::AllToAllSingle, 32, 1 << 20, "nccl");
  const std::string clean = t.serialize();
  EXPECT_EQ(TuningTable::parse(clean).num_entries(), 2u);
  std::istringstream in(clean);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::string damaged = clean;
    const std::size_t pos = damaged.find(line);
    damaged.insert(pos + line.size(), " 999");
    EXPECT_THROW(TuningTable::parse(damaged), InvalidArgument)
        << "line " << line_no << " accepted trailing garbage";
  }
}

TEST(TuningTable, ParseSkipsCommentsAndBlankLines) {
  TuningTable t = TuningTable::parse("# header\n\nall_reduce 8 1024 nccl\n");
  EXPECT_EQ(t.num_entries(), 1u);
}

TEST(AutoResolution, UntunedOpFallsBackInsteadOfThrowing) {
  // Regression: "auto" for an op the table never tuned used to throw out of
  // TuningTable::lookup mid-dispatch and kill the run. Resolution now falls
  // back to the default backend with a warning and a tune.fallback counter;
  // the throw is reserved for direct lookup() callers (tested above).
  ClusterContext cluster(net::SystemConfig::lassen(1));
  McrDl mcr(&cluster);
  mcr.init({"nccl", "mv2-gdr"});
  TuningTable table;
  table.set(OpType::AllReduce, 4, 1 << 20, "mv2-gdr");
  mcr.set_tuning_table(table);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    Tensor t = Tensor::full({256}, DType::F32, 1.0, dev);
    Work tuned = api.all_reduce("auto", t, ReduceOp::Sum, true);
    Tensor gathered = Tensor::zeros({256 * 4}, DType::F32, dev);
    Work untuned = api.all_gather("auto", gathered, t, true);  // not in the table
    tuned->synchronize();
    untuned->synchronize();
    if (rank == 0) {
      EXPECT_EQ(tuned->backend_name, "mv2-gdr");
      EXPECT_EQ(untuned->backend_name, "nccl");  // default = first initialised
    }
    api.synchronize();
  });
  EXPECT_GT(cluster.metrics().counter("tune.fallback", {{"op", "all_gather"}}).value(), 0u);
  mcr.finalize();
}

TEST(TuningSuite, GeneratesTableMatchingCostModelOrderings) {
  // A reduced grid at 16 Lassen GPUs: small allreduce must tune to
  // MVAPICH2-GDR and large allreduce to NCCL (Fig 2a premise).
  TuningSuite suite(net::SystemConfig::lassen(4));
  TuningConfig cfg;
  cfg.backends = {"nccl", "mv2-gdr"};
  cfg.ops = {OpType::AllReduce};
  cfg.sizes = {1024, 1 << 22};
  cfg.world_sizes = {16};
  cfg.iterations = 2;
  cfg.warmup = 1;
  TuningTable table = suite.generate(cfg);
  EXPECT_EQ(table.lookup(OpType::AllReduce, 16, 1024), "mv2-gdr");
  EXPECT_EQ(table.lookup(OpType::AllReduce, 16, 1 << 22), "nccl");
  EXPECT_EQ(table.num_entries(), 2u);
  // Raw measurements are retained for Fig 2-style plots.
  EXPECT_EQ(suite.measurements().size(), 4u);
  EXPECT_GT(suite.measured("nccl", OpType::AllReduce, 16, 1024), 0.0);
}

TEST(TuningSuite, AlltoallTunesToMv2AtScale) {
  TuningSuite suite(net::SystemConfig::lassen(4));
  TuningConfig cfg;
  cfg.backends = {"nccl", "mv2-gdr"};
  cfg.ops = {OpType::AllToAllSingle};
  cfg.sizes = {1 << 20};
  cfg.world_sizes = {16};
  cfg.iterations = 1;
  TuningTable table = suite.generate(cfg);
  EXPECT_EQ(table.lookup(OpType::AllToAllSingle, 16, 1 << 20), "mv2-gdr");
}

TEST(TuningSuite, MultipleWorldSizesProduceIndependentRows) {
  TuningSuite suite(net::SystemConfig::lassen(2));
  TuningConfig cfg;
  cfg.backends = {"nccl"};
  cfg.ops = {OpType::AllReduce};
  cfg.sizes = {4096};
  cfg.world_sizes = {4, 8};
  cfg.iterations = 1;
  TuningTable table = suite.generate(cfg);
  EXPECT_EQ(table.tuned_worlds(OpType::AllReduce), (std::vector<int>{4, 8}));
  // Latency grows with scale.
  EXPECT_LT(suite.measured("nccl", OpType::AllReduce, 4, 4096),
            suite.measured("nccl", OpType::AllReduce, 8, 4096));
}

}  // namespace
}  // namespace mcrdl
