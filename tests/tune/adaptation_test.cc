// End-to-end adaptation: run the bench/experiments.h adapt experiment (a
// fault::degrade_links plan hits the statically-best backend mid-run) and
// assert the ISSUE acceptance bar — the online tuner switches backends, the
// post-adaptation step time lands within 10% of the best undegraded
// alternative, the static table never recovers, and the whole thing is
// deterministic for a fixed seed.
#include <gtest/gtest.h>

#include "bench/experiments.h"
#include "src/tune/tuning.h"

namespace mcrdl {
namespace {

bench::AdaptOptions quick_options() {
  bench::AdaptOptions opts;
  opts.quick = true;
  return opts;
}

TEST(Adaptation, OnlineTunerReroutesAndThroughputRecovers) {
  const bench::AdaptReport report = bench::run_adapt(quick_options());
  EXPECT_GE(report.switches, 1u) << "tuner never left the degraded incumbent";
  EXPECT_GE(report.quarantines, 1u) << "drift detection never fired";
  EXPECT_NE(report.degraded_backend, report.adapted_backend);
  // Acceptance: post-adaptation median step time within 10% of the best
  // undegraded backend's.
  EXPECT_LE(report.online_post_us, 1.10 * report.alt_best_us);
  // The static table keeps riding the degraded backend and stays visibly
  // slower — the contrast that motivates the online tuner.
  EXPECT_GT(report.static_post_us, 1.5 * report.alt_best_us);
}

TEST(Adaptation, LearnedTableRecordsTheRefugeBackend) {
  const bench::AdaptReport report = bench::run_adapt(quick_options());
  TuningTable learned = TuningTable::parse(report.learned_table);
  ASSERT_GE(learned.num_entries(), 1u);
  EXPECT_EQ(learned.lookup(OpType::AllReduce, 8, 256 << 10), report.adapted_backend);
}

TEST(Adaptation, DeterministicForAFixedSeed) {
  const bench::AdaptReport a = bench::run_adapt(quick_options());
  const bench::AdaptReport b = bench::run_adapt(quick_options());
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.learned_table, b.learned_table);
  EXPECT_EQ(bench::to_bench_json(a.bench), bench::to_bench_json(b.bench));
}

}  // namespace
}  // namespace mcrdl
