// Unit tests for the online adaptive tuner (src/tune/online_tuner.h):
// prior seeding, hysteresis, cross-rank decision replay, drift quarantine
// with single-probe release, and the determinism contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tune/online_tuner.h"

namespace mcrdl {
namespace {

using tune::OnlineTuner;
using tune::OnlineTunerConfig;

const std::vector<std::string> kBackends = {"nccl", "mv2-gdr", "ompi"};

OnlineTunerConfig test_config() {
  OnlineTunerConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 1;
  cfg.baseline_samples = 2;
  cfg.quarantine_period = 8;
  return cfg;
}

TEST(OnlineTuner, BucketIsPow2WithFloor) {
  EXPECT_EQ(OnlineTuner::bucket(0), 256u);
  EXPECT_EQ(OnlineTuner::bucket(1), 256u);
  EXPECT_EQ(OnlineTuner::bucket(256), 256u);
  EXPECT_EQ(OnlineTuner::bucket(257), 512u);
  EXPECT_EQ(OnlineTuner::bucket(200 * 1000), 256u * 1024u);
  EXPECT_EQ(OnlineTuner::bucket(1u << 20), 1u << 20);
}

TEST(OnlineTuner, StaticPriorSeedsTheIncumbent) {
  TuningTable prior;
  prior.set(OpType::AllReduce, 8, 1 << 20, "mv2-gdr");
  OnlineTuner tuner(test_config());
  tuner.seed_prior(prior);
  tuner.select(OpType::AllReduce, 8, 4096, /*rank=*/0, kBackends);
  tuner.select(OpType::AllGather, 8, 4096, /*rank=*/0, kBackends);
  // The tuned op starts from the prior's winner; an op the prior does not
  // cover starts from the candidate preference order. (The select() *return*
  // can be an exploration probe, so assert the incumbents instead.)
  for (const auto& arm : tuner.arms()) {
    if (!arm.incumbent) continue;
    EXPECT_EQ(arm.backend, arm.op == OpType::AllReduce ? "mv2-gdr" : "nccl");
  }
}

TEST(OnlineTuner, HysteresisStopsNearTiesFromFlapping) {
  OnlineTuner tuner(test_config());
  // Challenger is 5% faster — inside the 10% hysteresis band.
  for (int i = 0; i < 6; ++i) {
    tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 100.0);
    tuner.observe(OpType::AllReduce, 8, 4096, "mv2-gdr", 95.0);
  }
  EXPECT_EQ(tuner.switches(), 0u);
}

TEST(OnlineTuner, SwitchesWhenChallengerClearsTheMargin) {
  OnlineTuner tuner(test_config());
  for (int i = 0; i < 6; ++i) {
    tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 100.0);
    tuner.observe(OpType::AllReduce, 8, 4096, "mv2-gdr", 60.0);
  }
  EXPECT_EQ(tuner.switches(), 1u);
  // Exploit decisions now return the new incumbent; run a few selections and
  // require the winner to show up (an explore slot may pick someone else).
  bool saw_winner = false;
  for (int i = 0; i < 4; ++i) {
    saw_winner |= tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends) == "mv2-gdr";
  }
  EXPECT_TRUE(saw_winner);
}

TEST(OnlineTuner, RanksReplayTheSameDecisionSequence) {
  // Rank 0 races ahead, generating fresh decisions with observations in
  // between; ranks 1..3 then replay the identical per-index choices — the
  // property that keeps a collective on one backend across the group.
  OnlineTuner tuner(test_config());
  std::vector<std::string> rank0;
  for (int i = 0; i < 12; ++i) {
    rank0.push_back(tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends));
    tuner.observe(OpType::AllReduce, 8, 4096, rank0.back(), 50.0 + i);
  }
  for (int rank = 1; rank < 4; ++rank) {
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(tuner.select(OpType::AllReduce, 8, 4096, rank, kBackends), rank0[i])
          << "rank " << rank << " diverged at decision " << i;
    }
  }
}

TEST(OnlineTuner, DriftQuarantinesReprobesAndRequarantines) {
  OnlineTunerConfig cfg = test_config();
  cfg.explore_period = 64;  // keep periodic probes out of this short run
  OnlineTuner tuner(cfg);
  // Healthy era: freeze the incumbent's baseline at 50us.
  for (int i = 0; i < 3; ++i) {
    tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 50.0);
  }
  // Degrade: one 250us sample pushes the EWMA past 2x the 50us baseline.
  tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 250.0);
  EXPECT_EQ(tuner.quarantines(), 1u);
  // The next decisions are forced off the quarantined incumbent — explores
  // draw from the viable set, and the first exploit switches incumbents (two
  // consecutive explore slots cannot happen, so two selects suffice).
  for (int i = 0; i < 2; ++i) {
    EXPECT_NE(tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends), "nccl");
  }
  EXPECT_EQ(tuner.switches(), 1u);
  // Sit out the quarantine; feed the refuge arm so its EWMA stays defined.
  bool reprobed = false;
  for (int i = 0; i < cfg.quarantine_period + 2; ++i) {
    const std::string pick = tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    if (pick == "nccl") {
      reprobed = true;
      // Still slow: the single probe must re-quarantine against the *kept*
      // healthy baseline, not wait for a fresh baseline to accumulate.
      tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 250.0);
      break;
    }
    tuner.observe(OpType::AllReduce, 8, 4096, pick, 80.0);
  }
  EXPECT_TRUE(reprobed) << "quarantine expiry never produced the owed probe";
  EXPECT_EQ(tuner.quarantines(), 2u);
}

TEST(OnlineTuner, ObserveBeforeSelectKeepsPriorAndCandidates) {
  // Regression: observe-only traffic (explicit-backend ops) must not lock a
  // key into a one-backend candidate list before "auto" traffic arrives.
  TuningTable prior;
  prior.set(OpType::AllReduce, 8, 1 << 20, "nccl");
  OnlineTuner tuner(test_config());
  tuner.seed_prior(prior);
  tuner.observe(OpType::AllReduce, 8, 4096, "ompi", 10.0);
  // Measured evidence beats the unmeasured prior, so this select may already
  // ride "ompi" — the regression is about the *key state*: all of select()'s
  // candidates must exist as arms, not just the one observe() saw first.
  tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends);
  int key_arms = 0;
  for (const auto& arm : tuner.arms()) {
    if (arm.op == OpType::AllReduce) ++key_arms;
  }
  EXPECT_EQ(key_arms, 3) << "select() must merge its candidates into the key";
  // And the un-observed candidates stay selectable: feed nccl faster samples
  // and the tuner must be able to win it back (impossible with a locked
  // one-backend candidate list).
  bool nccl_back = false;
  for (int i = 0; i < 8 && !nccl_back; ++i) {
    tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 4.0);
    nccl_back = tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends) == "nccl";
  }
  EXPECT_TRUE(nccl_back);
}

TEST(OnlineTuner, DeterministicAcrossInstancesWithSameSeed) {
  const auto run = [](std::uint64_t seed) {
    OnlineTunerConfig cfg = test_config();
    cfg.seed = seed;
    OnlineTuner tuner(cfg);
    std::vector<std::string> picks;
    for (int i = 0; i < 40; ++i) {
      const std::string pick = tuner.select(OpType::AllReduce, 16, 64 << 10, i % 2, kBackends);
      picks.push_back(pick);
      tuner.observe(OpType::AllReduce, 16, 64 << 10, pick,
                    pick == "mv2-gdr" ? 40.0 : 70.0 + (i % 5));
    }
    return picks;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(OnlineTuner, LearnedTablePicksMeasuredBestPerKey) {
  OnlineTuner tuner(test_config());
  for (int i = 0; i < 4; ++i) {
    tuner.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    tuner.observe(OpType::AllReduce, 8, 4096, "nccl", 100.0);
    tuner.observe(OpType::AllReduce, 8, 4096, "ompi", 30.0);
    tuner.select(OpType::AllGather, 8, 1 << 20, 0, kBackends);
    tuner.observe(OpType::AllGather, 8, 1 << 20, "mv2-gdr", 20.0);
  }
  TuningTable learned = tuner.to_table();
  EXPECT_EQ(learned.lookup(OpType::AllReduce, 8, 4096), "ompi");
  EXPECT_EQ(learned.lookup(OpType::AllGather, 8, 1 << 20), "mv2-gdr");
  // A key with selections but no observations still records its incumbent.
  OnlineTuner cold(test_config());
  cold.select(OpType::Broadcast, 4, 1024, 0, kBackends);
  EXPECT_EQ(cold.to_table().lookup(OpType::Broadcast, 4, 1024), "nccl");
}

// --- checkpoint (DESIGN.md §13) ---------------------------------------------

TEST(OnlineTunerCheckpoint, SaveRestoreSaveIsByteIdentical) {
  OnlineTuner a(test_config());
  for (int i = 0; i < 20; ++i) {
    const std::string pick = a.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    a.observe(OpType::AllReduce, 8, 4096, pick, pick == "mv2-gdr" ? 50.0 : 100.0);
    a.select(OpType::AllGather, 8, 1 << 20, 1, kBackends);
    a.observe(OpType::AllGather, 8, 1 << 20, "ompi", 33.25);
  }
  const std::string snap = a.save_state();

  OnlineTuner b(test_config());
  b.restore_state(snap);
  EXPECT_EQ(b.save_state(), snap) << "save -> restore -> save must round-trip byte-identically";
  EXPECT_EQ(b.decisions(), a.decisions());
  EXPECT_EQ(b.explorations(), a.explorations());
  EXPECT_EQ(b.switches(), a.switches());
  EXPECT_EQ(b.to_table().serialize(), a.to_table().serialize());
}

TEST(OnlineTunerCheckpoint, RestoredTunerResumesWithoutColdStartExploration) {
  // Train a tuner until mv2-gdr is the measured incumbent, checkpoint it,
  // and restore into a fresh instance. The restored tuner must make the
  // exact decision sequence the original would have continued with —
  // incumbents, hysteresis memory, and the explore schedule's phase all
  // resume, so there is no cold-start re-exploration burst. tune_decisions
  // metrics on the restored side count only the continuation.
  OnlineTuner a(test_config());
  for (int i = 0; i < 24; ++i) {
    a.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    a.observe(OpType::AllReduce, 8, 4096, "nccl", 100.0);
    a.observe(OpType::AllReduce, 8, 4096, "mv2-gdr", 40.0);
  }

  obs::MetricsRegistry metrics;
  OnlineTuner b(test_config(), &metrics);
  b.restore_state(a.save_state());
  const std::uint64_t explorations_at_restore = b.explorations();

  std::uint64_t fresh = 0;
  for (int i = 0; i < 16; ++i) {
    const std::string pa = a.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    const std::string pb = b.select(OpType::AllReduce, 8, 4096, 0, kBackends);
    EXPECT_EQ(pb, pa) << "restored tuner diverged at continuation decision " << i;
    ++fresh;
    a.observe(OpType::AllReduce, 8, 4096, pa, pa == "mv2-gdr" ? 40.0 : 100.0);
    b.observe(OpType::AllReduce, 8, 4096, pb, pb == "mv2-gdr" ? 40.0 : 100.0);
  }
  EXPECT_EQ(b.explorations() - explorations_at_restore,
            a.explorations() - explorations_at_restore)
      << "the restored tuner re-explored beyond the original schedule";
  // The continuation's decisions land in the metrics registry: exploit-mode
  // decisions dominate (a cold start would log an exploration burst).
  const std::uint64_t exploit =
      metrics.counter_value("tune_decisions", {{"mode", "exploit"}});
  const std::uint64_t explore =
      metrics.counter_value("tune_decisions", {{"mode", "explore"}});
  EXPECT_EQ(exploit + explore, fresh);
  EXPECT_GT(exploit, explore);
}

TEST(OnlineTunerCheckpoint, MalformedBodiesAreRejected) {
  OnlineTuner tuner(test_config());
  EXPECT_THROW(tuner.restore_state("not a tuner snapshot"), InvalidArgument);
}

}  // namespace
}  // namespace mcrdl
