// Integration tests pinning the end-to-end paper shapes at reduced scale:
// the figures' winner orderings must hold when the full stack (models +
// runtime + backends + cost models) runs together. These are the
// regression guards for EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "src/models/dlrm.h"
#include "src/models/megatron.h"
#include "src/models/moe.h"
#include "src/models/resnet.h"

namespace mcrdl::models {
namespace {

HarnessOptions quick() {
  HarnessOptions o;
  o.warmup_steps = 1;
  o.measured_steps = 2;
  return o;
}

// --- Fig 8 shape -------------------------------------------------------------

TEST(PaperShapes, Fig8_NcclBeatsMv2AtSmallScaleForMoE) {
  net::SystemConfig sys = net::SystemConfig::lassen(4);  // 16 GPUs
  TrainingHarness h(sys);
  DSMoEModel m(DSMoEConfig{}, sys);
  RunResult nccl = h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  RunResult mv2 = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), quick());
  EXPECT_GT(nccl.throughput, mv2.throughput);
}

TEST(PaperShapes, Fig8_MixedBeatsBothAtEveryScale) {
  for (int nodes : {4, 16}) {
    net::SystemConfig sys = net::SystemConfig::lassen(nodes);
    TrainingHarness h(sys);
    DSMoEModel m(DSMoEConfig{}, sys);
    RunResult nccl = h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
    RunResult mv2 = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), quick());
    RunResult mixed = h.run(m, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), quick());
    EXPECT_GT(mixed.throughput, nccl.throughput) << nodes * 4 << " GPUs";
    EXPECT_GT(mixed.throughput, mv2.throughput) << nodes * 4 << " GPUs";
  }
}

TEST(PaperShapes, Fig8_MoEGainOverPureGrowsWithScale) {
  auto gain_at = [&](int nodes) {
    net::SystemConfig sys = net::SystemConfig::lassen(nodes);
    TrainingHarness h(sys);
    DSMoEModel m(DSMoEConfig{}, sys);
    RunResult nccl = h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
    RunResult mixed = h.run(m, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), quick());
    return mixed.throughput / nccl.throughput;
  };
  EXPECT_GT(gain_at(16), gain_at(4));  // 64 vs 16 GPUs
}

// --- Fig 9 shape -------------------------------------------------------------

TEST(PaperShapes, Fig9_DlrmMixedWinsAt32WithPaperClassMargins) {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(4);  // 32 GPUs
  TrainingHarness h(sys);
  DLRMModel m(DLRMConfig{}, sys);
  HarnessOptions o = quick();
  o.measured_steps = 6;
  o.warmup_steps = 2;
  RunResult nccl = h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), o);
  RunResult mv2 = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), o);
  RunResult mixed = h.run(m, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), o);
  // Paper: +25% over MV2-GDR, +30% over NCCL. Accept the 10%-60% band.
  EXPECT_GT(mixed.throughput / mv2.throughput, 1.10);
  EXPECT_LT(mixed.throughput / mv2.throughput, 1.60);
  EXPECT_GT(mixed.throughput / nccl.throughput, 1.15);
  EXPECT_LT(mixed.throughput / nccl.throughput, 1.70);
}

TEST(PaperShapes, Fig9_Mv2OvertakesNcclAt32ForDlrm) {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(4);
  TrainingHarness h(sys);
  DLRMModel m(DLRMConfig{}, sys);
  HarnessOptions o = quick();
  o.measured_steps = 6;
  RunResult nccl = h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), o);
  RunResult mv2 = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), o);
  EXPECT_GT(mv2.throughput, nccl.throughput);
}

// --- Fig 10 shape ------------------------------------------------------------

TEST(PaperShapes, Fig10_ScclBeatsMv2ForDenseMegatron) {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(2);  // 16 GPUs
  TrainingHarness h(sys);
  MegatronConfig cfg;
  cfg.layers = 8;
  MegatronDenseModel m(cfg, sys);
  RunResult sccl = h.run(m, CommPlan::pure("sccl"), FrameworkModel::raw(), quick());
  RunResult mv2 = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), quick());
  EXPECT_GT(sccl.throughput, mv2.throughput);
}

// --- Fig 11 shape ------------------------------------------------------------

TEST(PaperShapes, Fig11_FrameworkOrdering) {
  net::SystemConfig sys = net::SystemConfig::lassen(8);  // 32 GPUs
  TrainingHarness h(sys);
  DSMoEConfig cfg;
  cfg.layers = 8;
  DSMoEModel m(cfg, sys);
  HarnessOptions o = quick();
  o.mcr_options.fusion.enabled = true;
  RunResult mcr = h.run(m, CommPlan::mcr_dl_mixed(), FrameworkModel::mcr_dl(), o);
  RunResult pytd =
      h.run(m, CommPlan::pure("nccl"), FrameworkModel::pytorch_distributed("nccl"), o);
  RunResult m4p = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::mpi4py(), o);
  EXPECT_GT(mcr.throughput, pytd.throughput);
  EXPECT_GT(mcr.throughput, m4p.throughput);
  // mpi4py's blocking + staging must hurt relative to its own backend raw.
  RunResult mv2_raw = h.run(m, CommPlan::pure("mv2-gdr"), FrameworkModel::raw(), o);
  EXPECT_LT(m4p.throughput, mv2_raw.throughput);
}

// --- Fig 12 shape ------------------------------------------------------------

TEST(PaperShapes, Fig12_MixedReducesCommShare) {
  net::SystemConfig sys = net::SystemConfig::lassen(16);  // 64 GPUs
  TrainingHarness h(sys);
  DSMoEModel m(DSMoEConfig{}, sys);
  RunResult nccl = h.run(m, CommPlan::pure("nccl"), FrameworkModel::raw(), quick());
  RunResult mixed = h.run(m, CommPlan::mcr_dl_mixed(), FrameworkModel::raw(), quick());
  EXPECT_LT(mixed.comm_fraction(), nccl.comm_fraction());
}

// --- determinism across the whole stack --------------------------------------

TEST(PaperShapes, EndToEndRunsAreBitwiseDeterministic) {
  auto once = [] {
    net::SystemConfig sys = net::SystemConfig::lassen(4);
    TrainingHarness h(sys);
    DSMoEConfig cfg;
    cfg.layers = 8;
    DSMoEModel m(cfg, sys);
    return h.run(m, CommPlan::mcr_dl_mixed(), FrameworkModel::mcr_dl(), quick());
  };
  RunResult a = once();
  RunResult b = once();
  EXPECT_EQ(a.step_time_us, b.step_time_us);
  EXPECT_EQ(a.comm_time_us, b.comm_time_us);
  EXPECT_EQ(a.comm_by_op_us, b.comm_by_op_us);
}

}  // namespace
}  // namespace mcrdl::models
