// The tuning-suite workflow behind the "auto" backend (paper Section V-F).
//
// 1. Run the micro-benchmark sweep over backends x operations x sizes.
// 2. Inspect/save the generated static tuning table.
// 3. Train with backend "auto": every operation picks its backend by
//    message size and scale at runtime.
//
//   ./examples/tuning_workflow
#include <cstdio>

#include "src/core/mcr_dl.h"

using namespace mcrdl;

int main() {
  net::SystemConfig sys = net::SystemConfig::lassen(4);  // 16 GPUs

  // --- 1. tuning sweep ------------------------------------------------------
  TuningSuite suite(sys);
  TuningConfig cfg;
  cfg.backends = {"nccl", "mv2-gdr", "sccl"};
  cfg.ops = {OpType::AllReduce, OpType::AllGather, OpType::AllToAllSingle};
  cfg.sizes = {1u << 10, 16u << 10, 256u << 10, 4u << 20};
  cfg.world_sizes = {16};
  cfg.iterations = 2;
  TuningTable table = suite.generate(cfg);
  std::printf("tuning sweep done: %zu table entries (%zu raw measurements)\n",
              table.num_entries(), suite.measurements().size());

  // --- 2. inspect and persist -----------------------------------------------
  for (OpType op : cfg.ops) {
    std::printf("  %s:", op_name(op));
    for (const auto& e : table.entries(op, 16)) {
      std::printf("  <=%zuB -> %s", e.max_bytes, e.backend.c_str());
    }
    std::printf("\n");
  }
  const std::string path = "/tmp/mcrdl_example_tuning.txt";
  table.save(path);
  std::printf("saved to %s\n\n", path.c_str());

  // --- 3. train with "auto" ---------------------------------------------------
  ClusterContext cluster(sys);
  McrDl mcr(&cluster);
  mcr.init(cfg.backends);
  mcr.set_tuning_table(TuningTable::load(path));
  mcr.logger().set_enabled(true);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    // A small latency-bound op and a large bandwidth-bound one: "auto"
    // routes them to different backends.
    Tensor small = Tensor::full({64}, DType::F32, 1.0, dev);
    Work ws = api.all_reduce("auto", small, ReduceOp::Sum, true);
    Tensor large = Tensor::full({1 << 20}, DType::F32, 1.0, dev);
    Work wl = api.all_reduce("auto", large, ReduceOp::Sum, true);
    ws->synchronize();
    wl->synchronize();
    if (rank == 0) {
      std::printf("auto routed the 256 B allreduce to %s and the 4 MiB allreduce to %s\n",
                  ws->backend_name.c_str(), wl->backend_name.c_str());
    }
    api.synchronize();
  });
  return 0;
}
