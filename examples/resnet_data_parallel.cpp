// Classic data-parallel training (ResNet-50) — the workload the paper uses
// to show that monolithic single-backend frameworks already serve pure
// data-parallelism well (Section I-C): the only significant communication
// is Allreduce, so the choice reduces to "fastest Allreduce", and MCR-DL's
// benefit is marginal (but never negative).
//
//   ./examples/resnet_data_parallel
#include <cstdio>

#include "src/models/resnet.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main() {
  net::SystemConfig sys = net::SystemConfig::lassen(16);  // 64 GPUs
  TrainingHarness harness(sys);
  ResNet50Model model(ResNet50Config{}, sys);

  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 3;

  std::printf("ResNet-50, batch 32/GPU on %d simulated V100s\n\n", sys.world_size());
  double best_pure = 0.0, mixed_thr = 0.0;
  for (const CommPlan& plan : {CommPlan::pure("nccl"), CommPlan::pure("mv2-gdr"),
                               CommPlan::pure("sccl"), CommPlan::mcr_dl_mixed()}) {
    RunResult r = harness.run(model, plan, FrameworkModel::mcr_dl(), opts);
    std::printf("%-18s %8.1f images/s   comm share %4.1f%%\n", plan.name.c_str(), r.throughput,
                r.comm_fraction() * 100.0);
    if (plan.name == "MCR-DL") {
      mixed_thr = r.throughput;
    } else {
      best_pure = std::max(best_pure, r.throughput);
    }
  }
  std::printf(
      "\nMCR-DL vs best single backend: %+.1f%% — data-parallel models gain little\n"
      "from mixing because Allreduce dominates (paper Section I-C), unlike the\n"
      "MoE/DLRM workloads where the gains are 25-35%%.\n",
      (mixed_thr / best_pure - 1.0) * 100.0);
  return 0;
}
