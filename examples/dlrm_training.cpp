// DLRM training: non-blocking Alltoall overlapping the top-MLP compute.
//
// Reproduces the paper's DLRM setting (8k global batch, bottom MLP
// 512-512-64, top MLP 1024-1024-1024-1) on 32 simulated ThetaGPU A100s and
// shows the throughput effect of backend choice on a model whose
// communication is Alltoall-dominated.
//
//   ./examples/dlrm_training
#include <cstdio>

#include "src/models/dlrm.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main() {
  net::SystemConfig sys = net::SystemConfig::theta_gpu(4);  // 32 GPUs
  TrainingHarness harness(sys);
  DLRMConfig cfg;
  DLRMModel model(cfg, sys);

  HarnessOptions opts;
  opts.warmup_steps = 2;
  opts.measured_steps = 8;

  std::printf("DLRM, global batch %d on %d simulated A100s\n", cfg.global_batch,
              sys.world_size());
  std::printf("embedding alltoall payload: %zu bytes/rank, dense gradients: %zu bytes\n\n",
              model.alltoall_bytes(sys.world_size()), model.dense_grad_bytes());

  for (const CommPlan& plan : {CommPlan::pure("nccl"), CommPlan::pure("mv2-gdr"),
                               CommPlan::mcr_dl_mixed()}) {
    RunResult r = harness.run(model, plan, FrameworkModel::mcr_dl(), opts);
    std::printf("%-18s step %8.1f us  throughput %6.2fM samples/s  comm share %4.1f%%\n",
                plan.name.c_str(), r.step_time_us, r.throughput / 1e6,
                r.comm_fraction() * 100.0);
  }

  std::printf(
      "\nDLRM overlaps each batch's forward Alltoall with the previous batch's\n"
      "top-MLP compute, which is why non-blocking Alltoall support matters\n"
      "(paper Section III-E); the mixed plan again wins (paper Figure 9).\n");
  return 0;
}
