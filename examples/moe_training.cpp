// DS-MoE training with mixed backends — the paper's flagship scenario.
//
// Trains the 4B-parameter DS-MoE workload on 64 simulated Lassen V100s
// under three communication plans and prints the resulting throughput and
// communication breakdown, showing where the mixed plan wins.
//
//   ./examples/moe_training
#include <cstdio>

#include "src/models/moe.h"

using namespace mcrdl;
using namespace mcrdl::models;

int main() {
  net::SystemConfig sys = net::SystemConfig::lassen(16);  // 64 GPUs
  TrainingHarness harness(sys);
  DSMoEModel model(DSMoEConfig{}, sys);

  HarnessOptions opts;
  opts.warmup_steps = 1;
  opts.measured_steps = 3;

  std::printf("DS-MoE (350M+PR-MoE, 4B params) on %d simulated V100s\n", sys.world_size());
  std::printf("alltoall payload per dispatch: %zu bytes, %d MoE layers\n\n",
              model.alltoall_bytes(), model.moe_layers());

  for (const CommPlan& plan : {CommPlan::pure("nccl"), CommPlan::pure("mv2-gdr"),
                               CommPlan::mcr_dl_mixed()}) {
    RunResult r = harness.run(model, plan, FrameworkModel::mcr_dl(), opts);
    std::printf("%-18s step %8.1f ms  throughput %7.1f samples/s  comm share %4.1f%%\n",
                plan.name.c_str(), r.step_time_us / 1e3, r.throughput,
                r.comm_fraction() * 100.0);
    for (const auto& [op, us] : r.comm_by_op_us) {
      if (us > 100.0) std::printf("    %-20s %8.1f ms/step\n", op.c_str(), us / 1e3);
    }
  }
  std::printf(
      "\nThe mixed plan routes Alltoall to MVAPICH2-GDR and Allreduce to NCCL,\n"
      "beating both monolithic configurations (paper Figure 8).\n");
  return 0;
}
