// Elastic shrink: training survives the permanent loss of ranks mid-run.
//
// A hybrid-parallel job (tp=2, ep=2 over 8 GPUs) allreduces gradients on
// MVAPICH2-GDR. At t = 2.5 ms the GPU pair {4, 5} — one TP block — is
// permanently lost. The recovery layer quiesces the in-flight rendezvous the
// dead ranks were parked in, shrinks the communicator to the six survivors,
// and replays the cancelled collectives on the new epoch; the survivors
// finish the run agreeing with each other. The program then rebuilds its
// process-group layout with shrink_process_groups(): losing a whole TP block
// keeps tp=2, while ep collapses because the new dp degree (3) is odd.
//
//   ./examples/elastic_shrink
#include <cstdio>
#include <vector>

#include "src/core/mcr_dl.h"
#include "src/core/process_groups.h"
#include "src/fault/recovery.h"

using namespace mcrdl;

namespace {

void print_layout(const char* title, const ProcessGroups& pg) {
  std::printf("%s: %d ranks, tp=%d ep=%d (dp=%d)\n", title, pg.world(),
              pg.tensor_parallel(), pg.expert_parallel(), pg.data_parallel());
  std::printf("  tp groups:");
  for (const auto& g : pg.all_tp_groups()) {
    std::printf(" [");
    for (std::size_t i = 0; i < g.size(); ++i) std::printf(i ? " %d" : "%d", g[i]);
    std::printf("]");
  }
  std::printf("\n  dp groups:");
  for (const auto& g : pg.all_dp_groups()) {
    std::printf(" [");
    for (std::size_t i = 0; i < g.size(); ++i) std::printf(i ? " %d" : "%d", g[i]);
    std::printf("]");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ClusterContext cluster(net::SystemConfig::lassen(2));  // 8 GPUs
  const ProcessGroups before(8, /*tp=*/2, /*ep=*/2);
  print_layout("== before", before);

  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.fault.enabled = true;
  // The chaos scenario: GPU pair {4, 5} goes silent shortly before t = 2.5 ms
  // (the straggler parks its peers in a cancellable rendezvous) and is
  // declared permanently lost at t = 2.5 ms.
  opts.fault.plan.specs.push_back(fault::FaultSpec::straggler(4, 25000.0, 2000.0));
  opts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(4, 2500.0));
  opts.fault.plan.specs.push_back(fault::FaultSpec::lose_rank(5, 2500.0));

  McrDl mcr(&cluster, opts);
  mcr.init({"mv2-gdr"});

  constexpr int kSteps = 8;
  std::vector<double> finals(8, 0.0);
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor grads = Tensor::full({1 << 12}, DType::F32, 1.0, cluster.device(rank));
    for (int step = 0; step < kSteps; ++step) {
      if (cluster.faults().rank_lost(rank)) return;  // this process is dead
      cluster.scheduler().sleep_for(300.0);
      try {
        // Survivors never see the loss here: cancelled collectives are
        // replayed on the shrunk communicator inside the pipeline.
        api.all_reduce("mv2-gdr", grads, ReduceOp::Sum);
      } catch (const RankLostError&) {
        return;  // the casualty itself unwinds through its cancelled op
      }
    }
    api.synchronize();
    finals[rank] = grads.get(0);
  });

  // Rebuild the process-group layout from the post-loss epoch state.
  const fault::RecoveryManager& recovery = mcr.recovery();
  const ShrunkGroups shrunk = shrink_process_groups(before, recovery.lost_ranks());
  print_layout("== after", shrunk.groups);
  std::printf("  tp %s, ep %s across the shrink\n",
              shrunk.tp_preserved ? "preserved" : "collapsed",
              shrunk.ep_preserved ? "preserved" : "collapsed");

  std::printf("survivor finals:");
  for (int r : shrunk.survivors) std::printf(" r%d=%.0f", r, finals[r]);
  std::printf("\n");

  // What the recovery layer did: ranks lost, epochs, quiesced + replayed ops.
  std::printf("%s", mcr.failover()->report().to_string().c_str());
  return 0;
}
