// The Section V-E extensions in one program: zfp-style communication
// compression, the communication logger, and the Chrome-trace export.
//
//   ./examples/compression_and_logging
//   # then open /tmp/mcrdl_example_trace.json in chrome://tracing or Perfetto
#include <cstdio>

#include "src/core/mcr_dl.h"

using namespace mcrdl;

namespace {

struct Outcome {
  double total_us = 0.0;
  int ops = 0;
  double mib_moved = 0.0;
  double busy_us = 0.0;
  std::map<std::string, SimTime> by_op;
  std::string trace_json;
};

Outcome run_broadcasts(bool compressed) {
  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.compression.enabled = compressed;
  opts.compression.min_bytes = 0;
  opts.compression.codec.bits_per_value = 10;
  ClusterContext cluster(net::SystemConfig::lassen(4));  // 16 GPUs
  McrDl mcr(&cluster, opts);
  mcr.init({"nccl"});
  Outcome out;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    for (int i = 0; i < 4; ++i) {
      Tensor weights = Tensor::phantom({4 << 20}, DType::F32, dev);  // 16 MiB
      api.broadcast("nccl", weights, 0);
      Tensor in = Tensor::phantom({1 << 20}, DType::F32, dev);
      Tensor gathered = Tensor::phantom({16 << 20}, DType::F32, dev);
      api.all_gather("nccl", gathered, in);
      api.synchronize();
    }
    if (rank == 0) out.total_us = cluster.scheduler().now();
  });
  out.ops = mcr.logger().op_count(0);
  out.mib_moved = mcr.logger().bytes_moved(0) / 1048576.0;
  out.busy_us = mcr.logger().comm_time(0);
  out.by_op = mcr.logger().time_by_op(0);
  out.trace_json = to_chrome_trace(mcr.logger());
  return out;
}

}  // namespace

int main() {
  const Outcome plain = run_broadcasts(false);
  const Outcome zfp = run_broadcasts(true);
  std::printf("16 GPUs, 4x (16 MiB broadcast + 16 MiB all_gather):\n");
  std::printf("  uncompressed: %.2f ms\n", plain.total_us / 1e3);
  std::printf("  zfp @ 10 bits/value: %.2f ms  (%.2fx faster)\n", zfp.total_us / 1e3,
              plain.total_us / zfp.total_us);

  std::printf("\ncommunication log (rank 0, compressed run): %d ops, %.2f MiB on the wire, "
              "%.2f ms busy\n",
              zfp.ops, zfp.mib_moved, zfp.busy_us / 1e3);
  for (const auto& [op, us] : zfp.by_op) {
    std::printf("  %-12s %.2f ms\n", op.c_str(), us / 1e3);
  }

  const std::string path = "/tmp/mcrdl_example_trace.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(zfp.trace_json.data(), 1, zfp.trace_json.size(), f);
      std::fclose(f);
    }
  }
  std::printf("\nwrote a chrome://tracing timeline to %s\n", path.c_str());
  return 0;
}
