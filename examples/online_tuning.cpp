// Online adaptive tuning: "auto" that keeps learning after the static
// tuning suite ran (DESIGN.md §9).
//
// A training loop dispatches its allreduce on "auto" with the online tuner
// enabled. The static table (the paper's Section V-F artifact) seeds the
// tuner's prior, so routing starts exactly where the table says — then a
// fault plan degrades that backend's links mid-run, the tuner's drift
// detector quarantines it, and traffic re-routes to the measured-best
// alternative. The learned table is saved at the end: the next run can
// warm-start from it instead of the stale static table.
//
//   ./examples/online_tuning
#include <cstdio>

#include "src/core/mcr_dl.h"

using namespace mcrdl;

int main() {
  net::SystemConfig sys = net::SystemConfig::lassen(2);  // 8 GPUs
  constexpr int kSteps = 120;
  constexpr std::int64_t kNumel = 64 << 10;  // 256 KiB gradients

  // The static prior: pretend the tuning suite picked NCCL for this grid
  // point (on a healthy system it does — see examples/tuning_workflow.cpp).
  TuningTable table;
  table.set(OpType::AllReduce, 8, 1u << 20, "nccl");

  McrDlOptions options;
  options.online_tuning.enabled = true;
  options.online_tuning.seed = 7;
  // Mid-run, NCCL's links get 8x slower (a flaky switch, a misrouted rail —
  // anything the static table cannot see).
  options.fault.enabled = true;
  options.fault.plan.specs.push_back(
      fault::FaultSpec::degrade_links("nccl", 8.0, fault::LinkScope::All, /*from_us=*/2500.0));

  ClusterContext cluster(sys);
  McrDl mcr(&cluster, options);
  mcr.init({"nccl", "mv2-gdr"});
  mcr.set_tuning_table(table);

  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    double window_start = cluster.scheduler().now();
    for (int s = 0; s < kSteps; ++s) {
      Tensor grads = Tensor::phantom({kNumel}, DType::F32, dev);
      api.all_reduce("auto", grads, ReduceOp::Sum, /*async_op=*/false);
      api.synchronize();
      if (rank == 0 && (s + 1) % 20 == 0) {
        const double now = cluster.scheduler().now();
        std::printf("steps %3d-%3d: %7.2f us/step\n", s - 19, s,
                    (now - window_start) / 20.0);
        window_start = now;
      }
    }
  });

  const tune::OnlineTuner* tuner = mcr.online_tuner();
  std::printf("\ntuner: %llu decisions, %llu explorations, %llu switches, %llu quarantines\n",
              static_cast<unsigned long long>(tuner->decisions()),
              static_cast<unsigned long long>(tuner->explorations()),
              static_cast<unsigned long long>(tuner->switches()),
              static_cast<unsigned long long>(tuner->quarantines()));
  for (const auto& arm : tuner->arms()) {
    std::printf("  %s world=%d <=%zuB %-8s ewma=%8.2fus samples=%llu%s%s\n", op_name(arm.op),
                arm.world, arm.bucket, arm.backend.c_str(), arm.ewma_us,
                static_cast<unsigned long long>(arm.samples),
                arm.incumbent ? "  [incumbent]" : "", arm.quarantined ? "  [quarantined]" : "");
  }

  const std::string path = "/tmp/mcrdl_example_learned.tuning";
  tuner->to_table().save(path);
  std::printf("learned table saved to %s (warm-start a later run with "
              "TuningTable::load)\n", path.c_str());
  mcr.finalize();
  return 0;
}
