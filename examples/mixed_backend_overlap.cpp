// Synchronization deep-dive: the paper's Listings 3 and 4, plus the
// deadlock scenario of Section V-D made tangible.
//
// Part 1 — Listing 3: a NCCL allreduce on MCR-DL's communication stream
//   overlaps independent compute on the default stream (Fig 4(b)).
// Part 2 — Listing 4: allreduces on two backends in flight simultaneously.
// Part 3 — the naive synchronisation scheme with divergent backend order
//   across ranks genuinely deadlocks; the virtual-time scheduler proves it,
//   and MCR-DL's post-then-wait discipline resolves the same program.
//
//   ./examples/mixed_backend_overlap
#include <cstdio>

#include "src/core/mcr_dl.h"

using namespace mcrdl;

int main() {
  // --- Part 1: communication/computation overlap (Listing 3) ---------------
  {
    ClusterContext cluster(net::SystemConfig::lassen(2));
    McrDl mcr(&cluster);
    mcr.init({"nccl"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      Tensor x = Tensor::full({1 << 20}, DType::F32, 1.0, dev);
      Work h = api.all_reduce("nccl", x, ReduceOp::Sum, /*async_op=*/true);
      dev->compute(300.0, "y = y + y");  // independent work on the default stream
      h->wait();                         // stream-level dependency, host does not block
      dev->default_stream()->synchronize();
      if (rank == 0) {
        std::printf("[listing 3] comm+compute overlapped, finished at t=%.1f us\n",
                    cluster.scheduler().now());
      }
    });
  }

  // --- Part 2: explicit mixed-backend communication (Listing 4) ------------
  {
    ClusterContext cluster(net::SystemConfig::lassen(2));
    McrDl mcr(&cluster);
    mcr.init({"nccl", "mv2-gdr"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      Tensor x = Tensor::full({4096}, DType::F32, 1.0, dev);
      Tensor y = Tensor::full({4096}, DType::F32, 1.0, dev);
      Work h1 = api.all_reduce("nccl", x, ReduceOp::Sum, true);
      Work h2 = api.all_reduce("mv2-gdr", y, ReduceOp::Sum, true);
      h1->synchronize();
      h2->synchronize();
      if (rank == 0) {
        std::printf("[listing 4] mixed backends completed, x[0]=%.0f y[0]=%.0f at t=%.1f us\n",
                    x.get(0), y.get(0), cluster.scheduler().now());
      }
    });
  }

  // --- Part 3: the deadlock the naive scheme hits ---------------------------
  {
    ClusterContext cluster(net::SystemConfig::lassen(1));
    auto nccl = make_backend("nccl", &cluster);
    auto mpi = make_backend("mv2-gdr", &cluster);
    nccl->init();
    mpi->init();
    try {
      cluster.run_spmd([&](int rank) {
        Tensor x = Tensor::full({256}, DType::F32, 1.0, cluster.device(rank));
        Tensor y = Tensor::full({256}, DType::F32, 2.0, cluster.device(rank));
        if (rank == 0) {
          // Naive: host-synchronise the NCCL collective before entering MPI.
          nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true)->synchronize();
          mpi->world()->all_reduce(rank, y, ReduceOp::Sum, false);
        } else {
          // Other ranks enter MPI first: circular wait.
          mpi->world()->all_reduce(rank, y, ReduceOp::Sum, false);
          nccl->world()->all_reduce(rank, x, ReduceOp::Sum, true)->synchronize();
        }
      });
      std::printf("[deadlock] unexpectedly completed?!\n");
    } catch (const DeadlockError& e) {
      std::printf("[deadlock] naive synchronisation deadlocked as the paper warns:\n  %s\n",
                  e.what());
    }
  }

  // The same divergent program order, written MCR-DL style (post both async,
  // then wait), completes fine.
  {
    ClusterContext cluster(net::SystemConfig::lassen(1));
    McrDl mcr(&cluster);
    mcr.init({"nccl", "mv2-gdr"});
    cluster.run_spmd([&](int rank) {
      Api api = mcr.on(rank);
      sim::Device* dev = cluster.device(rank);
      Tensor x = Tensor::full({256}, DType::F32, 1.0, dev);
      Tensor y = Tensor::full({256}, DType::F32, 2.0, dev);
      Work h1, h2;
      if (rank == 0) {
        h1 = api.all_reduce("nccl", x, ReduceOp::Sum, true);
        h2 = api.all_reduce("mv2-gdr", y, ReduceOp::Sum, true);
      } else {
        h2 = api.all_reduce("mv2-gdr", y, ReduceOp::Sum, true);
        h1 = api.all_reduce("nccl", x, ReduceOp::Sum, true);
      }
      h1->synchronize();
      h2->synchronize();
      if (rank == 0) {
        std::printf("[mcr-dl] same divergent order, deadlock-free: x[0]=%.0f y[0]=%.0f\n",
                    x.get(0), y.get(0));
      }
    });
  }
  return 0;
}
