// Chaos failover: training survives a mid-run backend outage.
//
// A data-parallel-style loop allreduces gradients on NCCL. Halfway through,
// an injected outage takes NCCL down permanently. The fault layer re-routes
// every subsequent collective to MVAPICH2-GDR — the mix-and-match runtime's
// next-best backend — and the run finishes with exactly the values a
// fault-free run produces. The failover is visible in the resilience
// report and, with --trace-style coloring, in the Chrome trace written at
// the end.
//
//   ./examples/chaos_failover
#include <cmath>
#include <cstdio>

#include "src/core/mcr_dl.h"

using namespace mcrdl;

int main() {
  ClusterContext cluster(net::SystemConfig::lassen(2));  // 8 GPUs

  McrDlOptions opts;
  opts.logging_enabled = true;
  opts.fault.enabled = true;
  // The chaos scenario: NCCL is out of service from t = 1.5 ms, forever.
  opts.fault.plan.specs.push_back(fault::FaultSpec::outage("nccl", 1500.0));
  // Retry/failover policy: up to 3 attempts per backend with exponential
  // backoff, then move to the next healthy backend in preference order.
  opts.fault.retry.max_attempts = 3;
  opts.fault.retry.base_backoff_us = 50.0;

  McrDl mcr(&cluster, opts);
  mcr.init({"nccl", "mv2-gdr"});

  constexpr int kSteps = 10;
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    Tensor grads = Tensor::full({1 << 18}, DType::F32, 1.0, cluster.device(rank));
    for (int step = 0; step < kSteps; ++step) {
      // "Compute" for a while, then reduce gradients. The program never
      // mentions the outage: the runtime routes around it.
      cluster.scheduler().sleep_for(300.0);
      api.all_reduce("nccl", grads, ReduceOp::Sum);
    }
    api.synchronize();
    if (rank == 0) {
      std::printf("rank 0 final value: %.0f (expected %.0f)\n", grads.get(0),
                  std::pow(8.0, kSteps));
    }
  });

  // What the fault layer did.
  std::printf("%s", mcr.failover()->report().to_string().c_str());
  int on_nccl = 0, on_mv2 = 0;
  for (const auto& rec : mcr.logger().records()) {
    if (rec.rank != 0) continue;
    (rec.backend == "nccl" ? on_nccl : on_mv2)++;
  }
  std::printf("rank-0 allreduces: %d on nccl, %d failed over to mv2-gdr\n", on_nccl, on_mv2);

  // Rerouted ops show up highlighted in the Chrome trace (chrome://tracing).
  write_chrome_trace(mcr.logger(), "chaos_failover_trace.json");
  std::printf("trace written to chaos_failover_trace.json\n");
  return 0;
}
