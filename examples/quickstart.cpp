// Quickstart: the MCR-DL "hello world".
//
// Builds a small simulated cluster (2 Lassen nodes = 8 GPUs), initialises
// two communication backends, and runs the paper's Listing-4 program: one
// allreduce on NCCL and one on MVAPICH2-GDR, both in flight at once, plus a
// vector collective that NCCL lacks natively (MCR-DL emulates it
// transparently).
//
//   ./examples/quickstart
#include <cstdio>

#include "src/core/mcr_dl.h"

using namespace mcrdl;

int main() {
  // 1. A simulated machine: 2 nodes x 4 V100s.
  ClusterContext cluster(net::SystemConfig::lassen(2));

  // 2. The MCR-DL runtime with two backends (Listing 1: init(list<str>)).
  McrDl mcr(&cluster);
  mcr.init({"nccl", "mv2-gdr"});
  std::printf("initialised backends:");
  for (const auto& b : mcr.get_backends()) std::printf(" %s", b.c_str());
  std::printf("\n");

  // 3. One actor per rank, SPMD style.
  cluster.run_spmd([&](int rank) {
    Api api = mcr.on(rank);
    sim::Device* dev = cluster.device(rank);
    const int world = api.get_size("nccl");

    // Two async allreduces on two different backends, overlapped (the
    // paper's Listing 4). MCR-DL's post-then-wait handles make the mix
    // deadlock-free.
    Tensor x = Tensor::full({1024}, DType::F32, 1.0, dev);
    Tensor y = Tensor::full({1024}, DType::F32, 2.0, dev);
    Work h1 = api.all_reduce("nccl", x, ReduceOp::Sum, /*async_op=*/true);
    Work h2 = api.all_reduce("mv2-gdr", y, ReduceOp::Sum, /*async_op=*/true);
    h1->synchronize();
    h2->synchronize();

    // A vector collective NCCL has no native support for: MCR-DL emulates
    // it from native primitives (Section V-B).
    Tensor mine = Tensor::full({rank + 1}, DType::F32, rank * 1.0, dev);
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < world; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    Tensor gathered = Tensor::zeros({total}, DType::F32, dev);
    api.all_gatherv("nccl", gathered, mine, counts, displs);
    api.synchronize();

    if (rank == 0) {
      std::printf("rank 0: x[0]=%.0f (expect %d), y[0]=%.0f (expect %d)\n", x.get(0), world,
                  y.get(0), 2 * world);
      std::printf("rank 0: all_gatherv tail=%.0f (expect %d), virtual time %.1f us\n",
                  gathered.get(total - 1), world - 1, cluster.scheduler().now());
    }
  });
  return 0;
}
